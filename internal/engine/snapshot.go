// Subscription snapshot API: detach a live subscription — members,
// dedup windows, EWMA rate, breaker state, parked push deliveries —
// from one engine and attach it to another, preserving every invariant
// the scheduler relies on. This is the migration primitive the cluster
// tier (internal/cluster) builds on: a moving trigger identity is
// detached on the source node, replayed on the target, and because the
// detach claims the same execution-ownership flag polls and pushes
// claim (sub.polling), no poll or push can execute on the source after
// the snapshot is taken. Exactly-once across the handoff falls out of
// the dedup rings travelling inside the snapshot.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/proto"
)

// detachRetry is how long DetachSubscription waits between attempts to
// claim a subscription that is mid-execution.
const detachRetry = 10 * time.Millisecond

// MemberSnapshot is one member applet of a detached subscription: its
// definition plus its dedup window (remembered event IDs, oldest
// first).
type MemberSnapshot struct {
	Applet     Applet
	SeenEvents []string
}

// PendingPushSnapshot is one push delivery that was parked on the
// subscription when it was detached; the target replays it so nothing
// accepted into an ingress queue is lost to a migration.
type PendingPushSnapshot struct {
	Events []proto.TriggerEvent
	At     time.Time
}

// SubscriptionSnapshot is the portable state of one subscription:
// everything AttachSubscription needs to resume polling on another
// engine exactly where the source left off.
type SubscriptionSnapshot struct {
	// Key is the wire trigger identity the subscription polls under.
	// It is preserved verbatim across the move — both engines must
	// agree on Config.Coalesce for the key to stay consistent.
	Key     string
	Members []MemberSnapshot
	// Rate / RateAt carry the adaptive EWMA event-rate estimate, so a
	// hot identity stays on its fast cadence across the move instead of
	// re-warming from the presumed-cold initial gap.
	Rate   float64
	RateAt time.Time
	// FailStreak and BreakerOpen carry the resilience state: an open
	// breaker stays open on the target (probes resume at the probe
	// interval), so a migration cannot be used to hammer a down
	// service.
	FailStreak  int
	BreakerOpen bool
	// PollCount is the subscription's lifetime poll tally.
	PollCount int64
	// PendingPush are deliveries parked mid-execution at detach time.
	PendingPush []PendingPushSnapshot
}

// snapshotSubLocked builds sub's portable snapshot without mutating it.
// The caller holds the owning shard's mutex and has verified no
// execution owns the subscription (sub.polling is false), so the member
// rings and parked deliveries are stable.
func snapshotSubLocked(sub *subscription) *SubscriptionSnapshot {
	snap := &SubscriptionSnapshot{
		Key:        sub.key,
		Members:    make([]MemberSnapshot, len(sub.members)),
		Rate:       sub.rate,
		RateAt:     sub.rateAt,
		FailStreak: sub.failStreak,
		PollCount:  sub.pollCount,
	}
	for i, ra := range sub.members {
		snap.Members[i] = MemberSnapshot{
			Applet:     ra.def,
			SeenEvents: ra.dedup.snapshotIDs(),
		}
	}
	for _, p := range sub.pushPending {
		snap.PendingPush = append(snap.PendingPush, PendingPushSnapshot{Events: p.events, At: p.at})
	}
	if sub.brState != brClosed {
		snap.BreakerOpen = true
	}
	return snap
}

// ExportSubscriptions captures a consistent snapshot of every live
// subscription — without detaching anything; the engine keeps running.
// This is the periodic-snapshot primitive of the durability tier:
// combined with the journal's ordering contract (journal.go), a caller
// that reads the journal's head position *before* exporting gets a
// snapshot covering every record at or below that position, so replay
// of the remaining tail only needs to be idempotent, never ordered
// against the snapshot.
//
// Each subscription is captured under its shard's lock after waiting
// out any in-flight execution (the same sub.polling claim detach and
// the executors use — but here the flag is only observed, not taken, so
// the subscription keeps polling the moment the lock drops). Results
// are sorted by key.
func (e *Engine) ExportSubscriptions() []*SubscriptionSnapshot {
	// Taking (and releasing) e.mu once fences all lifecycle records: any
	// install/remove/attach/detach journaled before the caller read the
	// journal head had committed inside an e.mu section, so its effect
	// is visible to the per-shard capture below.
	e.mu.Lock()
	nsubs := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		nsubs += len(sh.subs)
		sh.mu.Unlock()
	}
	e.mu.Unlock()

	out := make([]*SubscriptionSnapshot, 0, nsubs)
	for _, sh := range e.shards {
		sh.mu.Lock()
		keys := make([]string, 0, len(sh.subs))
		for k := range sh.subs {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
		for _, k := range keys {
			for {
				sh.mu.Lock()
				sub := sh.subs[k]
				if sub == nil || sub.removed || len(sub.members) == 0 {
					sh.mu.Unlock()
					break // removed while exporting; its journal records cover it
				}
				if !sub.polling {
					snap := snapshotSubLocked(sub)
					sh.mu.Unlock()
					out = append(out, snap)
					break
				}
				sh.mu.Unlock()
				e.clock.Sleep(detachRetry)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SubscriptionKeys lists the wire trigger identities of every live
// subscription, across all shards. The cluster coordinator enumerates
// a node's keys with this when draining it.
func (e *Engine) SubscriptionKeys() []string {
	var keys []string
	for _, sh := range e.shards {
		sh.mu.Lock()
		for k := range sh.subs {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// DetachSubscription removes the subscription for key from this engine
// and returns its portable snapshot, or (nil, nil) when no such
// subscription is live (it was removed concurrently — a benign race
// for a rebalancing coordinator).
//
// Ownership: detach claims the subscription through the same
// sub.polling flag that serializes polls and pushes, waiting out any
// in-flight execution. Once claimed the subscription is retired from
// the shard in one critical section — pending poll cancelled, identity
// unindexed, breaker gauge settled — so no poll starts, no push
// matches, and no hint resolves on this engine afterwards. The flag is
// always released by drainPushPendingLocked even on a stopped engine,
// so detaching from a killed node terminates.
//
// Callers must ensure Remove is not called concurrently for the same
// subscription's members (the cluster router serializes this by
// parking operations on moving identities).
func (e *Engine) DetachSubscription(key string) (*SubscriptionSnapshot, error) {
	// Locate the owning shard. Uncoalesced subscriptions shard by
	// applet ID, so a key-derived shardFor lookup is not sufficient —
	// scan instead.
	var sh *shard
	for _, s := range e.shards {
		s.mu.Lock()
		sub := s.subs[key]
		s.mu.Unlock()
		if sub != nil {
			sh = s
			break
		}
	}
	if sh == nil {
		return nil, nil
	}

	var sub *subscription
	for {
		sh.mu.Lock()
		sub = sh.subs[key]
		if sub == nil || sub.removed || len(sub.members) == 0 {
			sh.mu.Unlock()
			return nil, nil
		}
		if !sub.polling {
			break // claimed: still holding sh.mu
		}
		sh.mu.Unlock()
		e.clock.Sleep(detachRetry)
	}

	// Retire the subscription under the shard lock, mirroring
	// leaveLocked's last-member path, and capture the snapshot in the
	// same critical section so no execution can interleave.
	snap := snapshotSubLocked(sub)
	if e.journal != nil {
		ids := make([]string, len(snap.Members))
		for i := range snap.Members {
			ids[i] = snap.Members[i].Applet.ID
		}
		if err := e.journal.AppendDetach(key, ids); err != nil && e.log != nil {
			e.log.Warn("journal detach failed", "key", key, "err", err)
		}
	}
	sub.pushPending = nil
	members := sub.members
	sub.removed = true
	if sub.brState != brClosed {
		sub.brState = brClosed
		e.breakerOpen.Add(-1)
	}
	delete(sh.subs, key)
	if en := sub.entry; en != nil {
		sh.heap.remove(en)
		sub.entry = nil
		sh.alarm.Wake()
	}
	sh.mu.Unlock()

	// Unindex the members engine-side (lock order: e.mu is never taken
	// with a shard lock held, so this happens after the shard section).
	e.mu.Lock()
	for _, ra := range members {
		id := ra.def.ID
		delete(e.applets, id)
		if u := e.byUser[ra.def.UserID]; u != nil {
			delete(u, id)
			if len(u) == 0 {
				delete(e.byUser, ra.def.UserID)
			}
		}
	}
	e.mu.Unlock()
	return snap, nil
}

// AttachSubscription installs a detached subscription on this engine,
// restoring the members' dedup windows, the EWMA rate estimate, the
// breaker state, and replaying any parked push deliveries. The first
// poll is scheduled from the restored state: at the probe interval
// when the breaker arrived open, by the adaptive policy's restored-
// rate gap otherwise — not from the presumed-cold initial spread.
func (e *Engine) AttachSubscription(snap *SubscriptionSnapshot) error {
	if snap == nil || snap.Key == "" {
		return fmt.Errorf("engine: attach: empty snapshot")
	}
	if len(snap.Members) == 0 {
		return fmt.Errorf("engine: attach %q: no members", snap.Key)
	}
	ras := make([]*runningApplet, len(snap.Members))
	for i, m := range snap.Members {
		if m.Applet.ID == "" {
			return fmt.Errorf("engine: attach %q: member %d has no applet ID", snap.Key, i)
		}
		ras[i] = &runningApplet{
			def:   m.Applet,
			dedup: restoreDedupRing(e.dedupCap, m.SeenEvents),
		}
	}
	lead := &ras[0].def
	shardKey := lead.ID
	if e.coalesce {
		shardKey = snap.Key
	}
	sh := e.shardFor(shardKey)

	e.mu.Lock()
	if e.stopped.Load() {
		e.mu.Unlock()
		return fmt.Errorf("engine: stopped")
	}
	for _, ra := range ras {
		if _, dup := e.applets[ra.def.ID]; dup {
			e.mu.Unlock()
			return fmt.Errorf("engine: attach %q: applet %q already installed", snap.Key, ra.def.ID)
		}
	}
	sh.mu.Lock()
	if sh.stopped {
		sh.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("engine: stopped")
	}
	if sh.subs[snap.Key] != nil {
		sh.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("engine: attach: subscription %q already present", snap.Key)
	}
	// Journal the arriving subscription before commit (same ordering as
	// Install): a node that accepted a migration and then crashed must
	// resurrect it, or the identity is lost cluster-wide.
	if e.journal != nil {
		if err := e.journal.AppendAttach(snap); err != nil {
			sh.mu.Unlock()
			e.mu.Unlock()
			return fmt.Errorf("engine: journal attach %q: %w", snap.Key, err)
		}
	}
	sub := &subscription{
		key:        snap.Key,
		shard:      sh,
		trigger:    lead.Trigger,
		user:       lead.UserID,
		rng:        sh.rng.Split("applet-" + lead.ID),
		members:    ras,
		rate:       snap.Rate,
		rateAt:     snap.RateAt,
		failStreak: snap.FailStreak,
		pollCount:  snap.PollCount,
	}
	for _, ra := range ras {
		ra.sub = sub
	}
	if snap.BreakerOpen {
		sub.brState = brOpen
		e.breakerOpen.Add(1)
	}
	sub.rebuildPrepLocked(e)
	sh.subs[snap.Key] = sub
	now := e.clock.Now()
	var gap time.Duration
	switch {
	case sub.brState == brOpen:
		gap = jitterDur(e.probeIvl, 0.1, sub.rng)
	case e.adaptive != nil:
		gap = e.adaptive.nextGapLocked(sub)
	default:
		gap = e.poll.NextGap(sub.leadID, sub.trigger.Service, sub.rng)
	}
	sh.scheduleLocked(sub, now.Add(gap))
	sh.mu.Unlock()
	for _, ra := range ras {
		e.applets[ra.def.ID] = ra
		u := e.byUser[ra.def.UserID]
		if u == nil {
			u = make(map[string]*runningApplet)
			e.byUser[ra.def.UserID] = u
		}
		u[ra.def.ID] = ra
	}
	e.mu.Unlock()

	// Drain the deliveries that were parked mid-move. execPush claims
	// the ownership flag itself, so this is safe against the first
	// scheduled poll racing in.
	for _, p := range snap.PendingPush {
		sh.execPush(sub, p.Events, p.At)
	}
	return nil
}
