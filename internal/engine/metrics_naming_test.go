package engine

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestMetricsNamingConvention audits every metric the full stack
// registers — engine scheduler, span recorder, SLO tier, tail store,
// fault injector — against the repo's naming convention
// (DESIGN.md, "Metric naming"):
//
//   - snake_case: lowercase segments, no leading/trailing/double '_';
//   - namespaced: ifttt_ (engine/recorder/slo) or faults_ (injector);
//   - counters end in _total;
//   - histograms and duration gauges name their unit (_seconds);
//   - non-counter gauges never end in _total.
//
// Registering everything at once also re-proves no two subsystems
// collide on a name (the registry panics on duplicates).
func TestMetricsNamingConvention(t *testing.T) {
	reg := obs.NewRegistry()
	clock := simtime.NewReal()
	rng := stats.NewRNG(3)

	inj := faults.New(clock, rng.Split("faults"))
	inj.RegisterMetrics(reg)

	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          inj.Wrap(stubDoer{}),
		Metrics:       reg,
		Push:          true,
		PollBudgetQPS: 1,
		Adaptive:      &AdaptiveConfig{},
		SLO:           &slo.Config{},
	})
	defer eng.Stop()

	nameRe := regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	unitSuffixes := []string{"_seconds", "_members", "_ratio", "_qps"}
	for _, m := range reg.Snapshot() {
		if !nameRe.MatchString(m.Name) {
			t.Errorf("%s: not snake_case", m.Name)
		}
		if !strings.HasPrefix(m.Name, "ifttt_") && !strings.HasPrefix(m.Name, "faults_") {
			t.Errorf("%s: missing ifttt_/faults_ namespace prefix", m.Name)
		}
		if m.Help == "" {
			t.Errorf("%s: no help text", m.Name)
		}
		switch m.Type {
		case "counter":
			if !strings.HasSuffix(m.Name, "_total") {
				t.Errorf("%s: counter without _total suffix", m.Name)
			}
		case "gauge":
			if strings.HasSuffix(m.Name, "_total") {
				t.Errorf("%s: gauge with counter-style _total suffix", m.Name)
			}
		case "histogram":
			hasUnit := false
			for _, u := range unitSuffixes {
				if strings.HasSuffix(m.Name, u) {
					hasUnit = true
				}
			}
			if !hasUnit {
				t.Errorf("%s: histogram without a unit suffix (want one of %v)", m.Name, unitSuffixes)
			}
		default:
			t.Errorf("%s: unknown metric type %q", m.Name, m.Type)
		}
	}
}
