package engine

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestMetricsNamingConvention audits every metric the full stack
// registers — engine scheduler, span recorder, SLO tier, tail store,
// fault injector — against the repo's naming convention via the shared
// obs.LintMetricNames linter (the cluster tier runs the same linter
// over its ifttt_cluster_* family in its own package).
//
// Registering everything at once also re-proves no two subsystems
// collide on a name (the registry panics on duplicates).
func TestMetricsNamingConvention(t *testing.T) {
	reg := obs.NewRegistry()
	clock := simtime.NewReal()
	rng := stats.NewRNG(3)

	inj := faults.New(clock, rng.Split("faults"))
	inj.RegisterMetrics(reg)

	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          inj.Wrap(stubDoer{}),
		Metrics:       reg,
		Push:          true,
		PollBudgetQPS: 1,
		Adaptive:      &AdaptiveConfig{},
		SLO:           &slo.Config{},
	})
	defer eng.Stop()

	for _, v := range obs.LintMetricNames(reg.Snapshot()) {
		t.Error(v)
	}
}
