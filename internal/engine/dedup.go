package engine

// dedupRing remembers the last cap event IDs seen by one applet, the
// window the engine uses to avoid re-executing events that services
// re-serve across polls. It is a fixed-size FIFO ring: once full, every
// insertion evicts the oldest remembered ID in O(1), and the backing
// array never grows past cap — unlike a re-sliced []string FIFO, whose
// backing array leaks evicted entries until the slice is reallocated.
//
// The ring is owned by the single worker polling its applet at any
// moment; it needs no lock.
type dedupRing struct {
	cap  int
	seen map[string]struct{}
	buf  []string
	head int // index of the oldest entry once the ring is full
}

// newDedupRing returns a ring remembering at most capacity IDs. The
// backing storage is allocated lazily so that installed-but-quiet
// applets cost a few words each.
func newDedupRing(capacity int) dedupRing {
	return dedupRing{cap: capacity}
}

// Add records id, reporting false when it is already remembered. When
// the window is full the oldest ID is evicted.
func (r *dedupRing) Add(id string) bool {
	if _, dup := r.seen[id]; dup {
		return false
	}
	if r.seen == nil {
		r.seen = make(map[string]struct{})
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, id)
	} else {
		delete(r.seen, r.buf[r.head])
		r.buf[r.head] = id
		r.head++
		if r.head == r.cap {
			r.head = 0
		}
	}
	r.seen[id] = struct{}{}
	return true
}

// Len returns the number of remembered IDs.
func (r *dedupRing) Len() int { return len(r.buf) }

// snapshotIDs returns the remembered IDs oldest-first — the order that,
// replayed through Add into an empty ring of the same capacity,
// reproduces this ring exactly. Used by subscription migration.
func (r *dedupRing) snapshotIDs() []string {
	if len(r.buf) == 0 {
		return nil
	}
	ids := make([]string, 0, len(r.buf))
	ids = append(ids, r.buf[r.head:]...)
	ids = append(ids, r.buf[:r.head]...)
	return ids
}

// restoreDedupRing rebuilds a ring of the given capacity from an
// oldest-first ID snapshot. Snapshots longer than the capacity keep
// only the newest entries, matching what FIFO eviction would have kept.
func restoreDedupRing(capacity int, ids []string) dedupRing {
	r := newDedupRing(capacity)
	for _, id := range ids {
		r.Add(id)
	}
	return r
}
