package engine

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/simtime"
	"repro/internal/stats"
)

func TestEWMARateHalfLife(t *testing.T) {
	const hl = time.Minute
	// Exactly one half-life of silence halves the estimate, regardless
	// of how the silence is sliced (time-aware decay).
	if got := ewmaRate(0.8, 0, hl, hl); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("one half-life of silence: rate = %g, want 0.4", got)
	}
	r := 0.8
	for i := 0; i < 4; i++ {
		r = ewmaRate(r, 0, hl/4, hl)
	}
	if math.Abs(r-0.4) > 1e-12 {
		t.Errorf("four quarter-half-lives of silence: rate = %g, want 0.4", r)
	}
	// Sustained observation converges to the true rate: n events per
	// dt pulls the estimate toward n/dt from either side.
	up, down := 0.0, 10.0
	for i := 0; i < 200; i++ {
		up = ewmaRate(up, 5, 10*time.Second, hl)
		down = ewmaRate(down, 5, 10*time.Second, hl)
	}
	if math.Abs(up-0.5) > 1e-6 || math.Abs(down-0.5) > 1e-6 {
		t.Errorf("converged rates = %g, %g, want 0.5", up, down)
	}
	// Non-positive dt is a no-op, not a division by zero.
	if got := ewmaRate(0.7, 3, 0, hl); got != 0.7 {
		t.Errorf("zero-dt update: rate = %g, want unchanged 0.7", got)
	}
	// A zero prior moves immediately on first observation.
	if got := ewmaRate(0, 6, time.Minute, hl); got <= 0 {
		t.Errorf("first observation left rate at %g", got)
	}
}

func TestAdaptiveGapMapping(t *testing.T) {
	p := resolveAdaptive(&AdaptiveConfig{
		FastFloor:           10 * time.Second,
		SlowCeiling:         10 * time.Minute,
		TargetEventsPerPoll: 2,
	})
	cases := []struct {
		rate float64
		want time.Duration
	}{
		{0, 10 * time.Minute},      // never seen an event → ceiling
		{-1, 10 * time.Minute},     // defensive: negative → ceiling
		{0.0001, 10 * time.Minute}, // 2/0.0001 = 20000s, clamped
		{0.01, 200 * time.Second},  // inside the band: target/rate
		{100, 10 * time.Second},    // hot, clamped at the floor
	}
	for _, tc := range cases {
		if got := p.gap(tc.rate); got != tc.want {
			t.Errorf("gap(%g) = %v, want %v", tc.rate, got, tc.want)
		}
	}

	// Defaults resolve, the hint boost pins the floor, and the initial
	// gap lands in [fast, slow).
	d := resolveAdaptive(&AdaptiveConfig{})
	if d.halfLife != DefaultEWMAHalfLife || d.fast != DefaultFastFloor || d.slow != DefaultSlowCeiling {
		t.Errorf("defaults = %v/%v/%v", d.halfLife, d.fast, d.slow)
	}
	if got := d.gap(d.boost); got != d.fast {
		t.Errorf("gap(boost) = %v, want the fast floor %v", got, d.fast)
	}
	g := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		ig := d.initialGap(g)
		if ig < d.fast || ig >= d.slow {
			t.Fatalf("initial gap = %v, want [%v, %v)", ig, d.fast, d.slow)
		}
	}
	if resolveAdaptive(nil) != nil {
		t.Error("nil config must resolve to nil (adaptive off)")
	}
	if nb := resolveAdaptive(&AdaptiveConfig{HintBoost: -1}); nb.boost != 0 {
		t.Errorf("negative HintBoost: boost = %g, want 0 (disabled)", nb.boost)
	}
}

func TestAdmissionReserve(t *testing.T) {
	t0 := time.Unix(1000, 0)
	a := newAdmission(1, 2) // 1 token/sec, burst 2
	// The burst admits back-to-back polls, then reservations space out
	// at exactly 1/qps.
	if w := a.reserve("svc", t0); w != 0 {
		t.Errorf("first reserve deferred by %v", w)
	}
	if w := a.reserve("svc", t0); w != 0 {
		t.Errorf("second reserve (burst) deferred by %v", w)
	}
	waits := []time.Duration{
		a.reserve("svc", t0),
		a.reserve("svc", t0),
		a.reserve("svc", t0),
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if waits[i] != want {
			t.Errorf("reservation %d wait = %v, want %v (distinct future slots)", i, waits[i], want)
		}
	}
	if g := a.grants(); g != 2 {
		t.Errorf("grants = %d, want 2", g)
	}
	if bal := a.tokenBalance(); math.Abs(bal-(-3)) > 1e-9 {
		t.Errorf("token balance = %g, want -3 (outstanding reservations)", bal)
	}
	// Refill is capped at burst, and services have independent buckets.
	if w := a.reserve("other", t0.Add(time.Hour)); w != 0 {
		t.Errorf("independent service deferred by %v", w)
	}
	if w := a.reserve("svc", t0.Add(time.Hour)); w != 0 {
		t.Errorf("after refill: deferred by %v", w)
	}
	if bal := a.tokenBalance(); bal > 3 {
		t.Errorf("token balance = %g, burst cap (2+1 services) exceeded", bal)
	}
}

// periodicDoer serves a deterministic periodic event schedule for polls
// whose request body carries the "hot" marker field, and empty results
// for everything else: the newest pending events since the previous
// poll (capped at 50, the protocol default), with IDs and unix-second
// timestamps derived from the schedule.
type periodicDoer struct {
	clock  simtime.Clock
	start  time.Time
	period time.Duration

	mu     sync.Mutex
	served int
}

func (d *periodicDoer) Do(req *http.Request) (*http.Response, error) {
	ok := func(body string) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Body:       io.NopCloser(strings.NewReader(body)),
			Header:     make(http.Header),
			Request:    req,
		}, nil
	}
	if req.Body == nil {
		return ok(`{}`)
	}
	raw, _ := io.ReadAll(req.Body)
	if !strings.Contains(string(raw), `"n":"hot"`) {
		return ok(`{"data":[]}`)
	}
	d.mu.Lock()
	avail := int(d.clock.Now().Sub(d.start) / d.period)
	lo := d.served
	if avail-lo > 50 {
		lo = avail - 50
	}
	var b strings.Builder
	b.WriteString(`{"data":[`)
	for i := avail - 1; i >= lo; i-- {
		if i < avail-1 {
			b.WriteByte(',')
		}
		ts := d.start.Add(time.Duration(i+1) * d.period).Unix()
		fmt.Fprintf(&b, `{"meta":{"id":"e%06d","timestamp":%d}}`, i, ts)
	}
	b.WriteString(`]}`)
	d.served = avail
	d.mu.Unlock()
	return ok(b.String())
}

// TestEngineAdaptiveConvergence checks the feedback loop end to end: a
// subscription whose trigger produces events converges to the fast
// floor within a few polls, while a silent subscription decays to (and
// stays at) the slow ceiling. Coalescing is on, so the hot
// subscription is also a two-member coalesced one — adaptive state
// lives per subscription, not per applet.
func TestEngineAdaptiveConvergence(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &periodicDoer{clock: clock, start: clock.Now(), period: 5 * time.Second}
	eng := New(Config{
		Clock:         clock,
		RNG:           stats.NewRNG(17),
		Doer:          doer,
		DispatchDelay: -1,
		Coalesce:      true,
		Adaptive: &AdaptiveConfig{
			HalfLife:    time.Minute,
			FastFloor:   10 * time.Second,
			SlowCeiling: 10 * time.Minute,
		},
	})
	hot := func(id string) Applet {
		return Applet{
			ID: id, UserID: "u1",
			Trigger: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "fired",
				Fields: map[string]string{"n": "hot"}},
			Action: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "act"},
		}
	}
	cold := Applet{
		ID: "cold", UserID: "u1",
		Trigger: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "fired",
			Fields: map[string]string{"n": "cold"}},
		Action: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "act"},
	}

	var midHot, midCold, endHot, endCold int64
	countPolls := func(marker string) int64 { return pollsByMarker(eng, marker) }

	clock.Run(func() {
		for _, a := range []Applet{hot("h1"), hot("h2"), cold} {
			if err := eng.Install(a); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		// Initial gaps land in [10s, 10m); by +30m the hot subscription
		// has seen its first backlog and converged.
		clock.Sleep(30 * time.Minute)
		midHot, midCold = countPolls("hot"), countPolls("cold")
		clock.Sleep(10 * time.Minute)
		endHot, endCold = countPolls("hot"), countPolls("cold")
		eng.Stop()
	})

	// Coalescing: two hot applets share one subscription — exactly one
	// upstream poll stream.
	st := eng.Stats()
	if st.Subscriptions != 2 {
		t.Fatalf("subscriptions = %d, want 2 (h1+h2 coalesced, cold)", st.Subscriptions)
	}
	// Converged hot cadence ≈ the 10s floor (±10% jitter): the last
	// 10 minutes hold ~55-66 polls. Allow slack for the dispatch time
	// of 50-event backlog polls.
	hotWindow := endHot - midHot
	if hotWindow < 40 {
		t.Errorf("hot polls in final 10m = %d, want ≥ 40 (≈ fast-floor cadence)", hotWindow)
	}
	// The cold subscription never leaves the ceiling: its first poll
	// lands in [10s, 10m) and later ones every ~10m, so 40 minutes hold
	// at most ~5.
	if endCold > 6 {
		t.Errorf("cold polls over 40m = %d, want ≤ 6 (slow-ceiling cadence)", endCold)
	}
	if midCold == 0 {
		t.Error("cold subscription never polled — ceiling must still poll")
	}
	t.Logf("hot polls: 30m=%d final10m=%d; cold polls 40m=%d", midHot, hotWindow, endCold)
}

// pollsByMarker counts poll_sent-equivalent polls per subscription by
// reading the per-subscription state under the shard locks. Polls are
// tracked via the trigger's marker field.
func pollsByMarker(e *Engine, marker string) int64 {
	var n int64
	for _, sh := range e.shards {
		sh.mu.Lock()
		for _, sub := range sh.subs {
			if sub.trigger.Fields["n"] == marker {
				n += sub.pollCount
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// TestEngineAdaptiveHintSpikeAndDecay: an honoured realtime hint spikes
// a cold subscription's EWMA to the fast floor, and with no events
// behind it the estimate decays back to the slow ceiling within a few
// half-lives — half-life correctness under simtime, observed through
// the engine's own scheduling.
func TestEngineAdaptiveHintSpikeAndDecay(t *testing.T) {
	r := newRigCfg(t, nil, map[string]bool{"testsvc": true}, func(cfg *Config) {
		cfg.Adaptive = &AdaptiveConfig{
			HalfLife:    time.Minute,
			FastFloor:   10 * time.Second,
			SlowCeiling: 10 * time.Minute,
		}
		cfg.DispatchDelay = -1
	})
	pollsAt := func() int { return len(r.tracesOf(TracePollSent)) }

	var atHint, fastWindow, decayStart, decayEnd int
	r.clock.Run(func() {
		if err := r.engine.Install(r.applet("a1")); err != nil {
			t.Fatalf("install: %v", err)
		}
		// Past the initial [10s, 10m) gap: the subscription is cold.
		r.clock.Sleep(12 * time.Minute)
		atHint = pollsAt()
		hintEngineUser(r, "u1")
		// The spike pins the cadence at the 10s floor, stretching as
		// the boost decays (half-life 1m): ~9 polls land in the next
		// three minutes, versus zero at the 10m ceiling cadence.
		r.clock.Sleep(3 * time.Minute)
		fastWindow = pollsAt() - atHint
		// boost = 0.1 ev/s decays below target/slow = 1/600 in
		// ln(60)/ln2 ≈ 5.9 half-lives ≈ 6 minutes; by +20m the
		// subscription is back at the ceiling.
		r.clock.Sleep(17 * time.Minute)
		decayStart = pollsAt()
		r.clock.Sleep(30 * time.Minute)
		decayEnd = pollsAt()
		r.engine.Stop()
	})

	if atHint < 1 || atHint > 3 {
		t.Errorf("pre-hint polls = %d, want 1-3 (cold cadence)", atHint)
	}
	if fastWindow < 7 {
		t.Errorf("polls in 3m after hint = %d, want ≥ 10 — hint did not spike the EWMA", fastWindow)
	}
	decayed := decayEnd - decayStart
	if decayed > 4 {
		t.Errorf("polls in 30m decay window = %d, want ≤ 4 — EWMA did not decay to the ceiling", decayed)
	}
	t.Logf("polls: pre-hint=%d fast-3m=%d decayed-30m=%d", atHint, fastWindow, decayed)
}

// TestEngineAdmissionDefersNotDrops: thirty subscriptions wanting a
// poll per minute against a 0.1 QPS budget. The admission controller
// must (a) hold the measured rate at the budget, (b) defer — not drop —
// every excess poll, and (c) keep every subscription polling.
func TestEngineAdmissionDefersNotDrops(t *testing.T) {
	clock := simtime.NewSimDefault()
	eng := New(Config{
		Clock:         clock,
		RNG:           stats.NewRNG(23),
		Doer:          stubDoer{},
		Poll:          FixedInterval{Interval: time.Minute},
		DispatchDelay: -1,
		PollBudgetQPS: 0.1,
		Shards:        4,
	})
	const n = 30
	const runFor = 30 * time.Minute
	clock.Run(func() {
		for i := 0; i < n; i++ {
			if err := eng.Install(scaleApplet(i)); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		clock.Sleep(runFor)
		eng.Stop()
	})
	st := eng.Stats()
	want := 0.1 * runFor.Seconds() // 180
	if float64(st.Polls) > want*1.1+1 {
		t.Errorf("polls = %d, want ≤ ~%.0f — budget exceeded", st.Polls, want)
	}
	if float64(st.Polls) < want*0.8 {
		t.Errorf("polls = %d, want ≥ %.0f — budget underused under saturation", st.Polls, 0.8*want)
	}
	if st.PollsDeferred == 0 {
		t.Error("PollsDeferred = 0, want > 0 — saturation must be visible")
	}
	if st.BudgetGrants+st.PollsDeferred < st.Polls {
		t.Errorf("grants(%d) + deferrals(%d) < polls(%d)", st.BudgetGrants, st.PollsDeferred, st.Polls)
	}
	// Defer, not drop: every subscription keeps polling. 180 polls over
	// 30 subs leaves no room for a starved one at FIFO fairness; check
	// via the per-subscription counters.
	starved := 0
	for _, sh := range eng.shards {
		sh.mu.Lock()
		for _, sub := range sh.subs {
			if sub.pollCount == 0 {
				starved++
			}
		}
		sh.mu.Unlock()
	}
	if starved > 0 {
		t.Errorf("%d subscriptions never polled — deferral must not starve", starved)
	}
	t.Logf("polls=%d deferred=%d grants=%d", st.Polls, st.PollsDeferred, st.BudgetGrants)
}

// TestEngineAdaptiveChaosZeroBudget is the adaptive-mode chaos soak
// (run under -race via scripts/verify.sh): adaptive cadence + admission
// + coalescing through a long blackout. Its core acceptance assertion
// is that breaker-open subscriptions consume zero budget — once the
// whole population has tripped, the admission grant counter must not
// move while probe polls keep running.
func TestEngineAdaptiveChaosZeroBudget(t *testing.T) {
	n := 5_000
	if testing.Short() {
		n = 1_000
	}
	const shards, workers = 8, 8
	const (
		blackoutStart = 4 * time.Minute
		blackoutEnd   = 60 * time.Minute
	)

	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(41)
	inj := faults.New(clock, rng.Split("faults"))
	inj.AddRule(faults.Rule{
		Blackouts: []faults.Window{{Start: blackoutStart, End: blackoutEnd}},
	})
	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          inj.Wrap(stubDoer{}),
		DispatchDelay: -1,
		Shards:        shards,
		ShardWorkers:  workers,
		Coalesce:      true,
		Adaptive: &AdaptiveConfig{
			HalfLife:    2 * time.Minute,
			FastFloor:   30 * time.Second,
			SlowCeiling: 10 * time.Minute,
		},
		PollBudgetQPS: 50,
		Resilience: ResilienceConfig{
			BackoffBase:      time.Minute,
			BackoffMax:       4 * time.Minute,
			BreakerThreshold: 3,
			ProbeInterval:    2 * time.Minute,
		},
	})

	// Pairs of applets share a user and trigger fields, so coalescing
	// folds them into two-member subscriptions.
	pairApplet := func(i int) Applet {
		pair := fmt.Sprintf("p%05d", i/2)
		return Applet{
			ID:     fmt.Sprintf("a%05d", i),
			UserID: "u-" + pair,
			Trigger: ServiceRef{
				Service: "chaossvc", BaseURL: "http://svc.sim", Slug: "fired",
				Fields: map[string]string{"n": pair},
			},
			Action: ServiceRef{Service: "chaossvc", BaseURL: "http://svc.sim", Slug: "act"},
		}
	}

	baseline := runtime.NumGoroutine()
	var peak int
	sample := func() {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
	}

	var allOpen, stillOpen, recovered Stats
	clock.Run(func() {
		for i := 0; i < n; i++ {
			if err := eng.Install(pairApplet(i)); err != nil {
				t.Fatalf("install %d: %v", i, err)
			}
		}
		sample()
		// Initial polls land in [30s, 10m) — the earliest before the
		// blackout starts, but even a successful first poll reschedules
		// at the ceiling into the blackout; the ladder (1m, 2m backoffs,
		// threshold 3) plus deferral spread has every breaker open well
		// before +25m.
		clock.Sleep(25 * time.Minute)
		sample()
		allOpen = eng.Stats()
		// The zero-budget window: only probes run between these
		// snapshots.
		clock.Sleep(20 * time.Minute)
		sample()
		stillOpen = eng.Stats()
		// Blackout ends at +60m; probes every ~2m close everything.
		clock.Sleep(25 * time.Minute)
		sample()
		recovered = eng.Stats()
		eng.Stop()
	})

	subs := int64(n / 2)
	if allOpen.BreakersOpen != subs {
		t.Fatalf("BreakersOpen = %d at +25m, want all %d — population did not fully trip",
			allOpen.BreakersOpen, subs)
	}
	// The acceptance criterion: with every breaker open, probe polls
	// keep running but admission grants are frozen — breaker-open
	// subscriptions consume zero budget.
	if probes := stillOpen.BreakerProbes - allOpen.BreakerProbes; probes == 0 {
		t.Error("no probes ran during the all-open window")
	}
	if got := stillOpen.BudgetGrants - allOpen.BudgetGrants; got != 0 {
		t.Errorf("budget grants moved by %d during the all-open window, want 0", got)
	}
	if stillOpen.Polls == stillOpen.BudgetGrants+stillOpen.PollsDeferred {
		// Not an equality invariant (probes poll without grants), but
		// grants alone must undercount polls once probes ran.
		t.Logf("note: polls=%d grants=%d deferred=%d", stillOpen.Polls, stillOpen.BudgetGrants, stillOpen.PollsDeferred)
	}
	if recovered.BreakersOpen != 0 {
		t.Errorf("BreakersOpen = %d after recovery, want 0", recovered.BreakersOpen)
	}
	if recovered.BudgetGrants <= stillOpen.BudgetGrants {
		t.Error("budget grants did not resume after recovery")
	}
	if recovered.BreakerCloses != recovered.BreakerOpens {
		t.Errorf("BreakerOpens/Closes = %d/%d, want equal", recovered.BreakerOpens, recovered.BreakerCloses)
	}
	bound := baseline + shards*(workers+1) + 100
	if peak > bound {
		t.Errorf("peak goroutines = %d (baseline %d), want ≤ %d", peak, baseline, bound)
	}
	t.Logf("subs=%d polls=%d deferred=%d grants=%d probes=%d peak goroutines=%d",
		subs, recovered.Polls, recovered.PollsDeferred, recovered.BudgetGrants,
		recovered.BreakerProbes, peak)
}
