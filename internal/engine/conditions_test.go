package engine

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestConditionPrimitives(t *testing.T) {
	now := time.Date(2017, 3, 25, 14, 30, 0, 0, time.UTC)
	ing := map[string]string{"subject": "Weekly Report", "temp": "31.5"}

	cases := []struct {
		cond Condition
		want bool
	}{
		{IngredientEquals{"subject", "weekly report"}, true},
		{IngredientEquals{"subject", "other"}, false},
		{IngredientEquals{"missing", ""}, true}, // empty == empty
		{IngredientContains{"subject", "report"}, true},
		{IngredientContains{"subject", "invoice"}, false},
		{IngredientAbove{"temp", 30}, true},
		{IngredientAbove{"temp", 32}, false},
		{IngredientAbove{"subject", 0}, false}, // non-numeric
		{TimeWindow{9, 17}, true},              // 14:30 in business hours
		{TimeWindow{17, 9}, false},             // wrapped window excludes 14:30
		{TimeWindow{22, 6}, false},
	}
	for _, c := range cases {
		if got := c.cond.Allows(now, ing); got != c.want {
			t.Errorf("%s = %v, want %v", c.cond.Describe(), got, c.want)
		}
		if c.cond.Describe() == "" {
			t.Errorf("empty Describe for %#v", c.cond)
		}
	}
}

func TestTimeWindowWrapsMidnight(t *testing.T) {
	night := TimeWindow{22, 6}
	at := func(h int) time.Time {
		return time.Date(2017, 3, 25, h, 0, 0, 0, time.UTC)
	}
	for _, h := range []int{22, 23, 0, 5} {
		if !night.Allows(at(h), nil) {
			t.Errorf("hour %d should be inside [22,6)", h)
		}
	}
	for _, h := range []int{6, 12, 21} {
		if night.Allows(at(h), nil) {
			t.Errorf("hour %d should be outside [22,6)", h)
		}
	}
}

// Property: an empty condition list always allows; adding an
// always-false condition always blocks.
func TestConditionsAllowProperty(t *testing.T) {
	f := func(key, val string, hour uint8) bool {
		now := time.Date(2017, 3, 25, int(hour%24), 0, 0, 0, time.UTC)
		ing := map[string]string{key: val}
		if !conditionsAllow(nil, now, ing) {
			return false
		}
		blocked := []Condition{TimeWindow{0, 0}} // empty window
		return !conditionsAllow(blocked, now, ing)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConditionsGateDispatch(t *testing.T) {
	// "Blink the light when email arrives, but only if the subject
	// mentions ALERT and it's business hours."
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		a := r.applet("cond1")
		a.Conditions = []Condition{
			IngredientContains{"subject", "alert"},
		}
		r.engine.Install(a)
		r.clock.Sleep(6 * time.Second)

		r.svc.Publish("fired", map[string]string{"subject": "newsletter"})
		r.clock.Sleep(15 * time.Second)
		r.svc.Publish("fired", map[string]string{"subject": "ALERT: disk full"})
		r.clock.Sleep(15 * time.Second)
		r.engine.Stop()
	})
	acked := r.tracesOf(TraceActionAcked)
	skipped := r.tracesOf(TraceConditionSkip)
	if len(acked) != 1 {
		t.Fatalf("acked = %d, want 1 (only the ALERT email)", len(acked))
	}
	if len(skipped) != 1 {
		t.Fatalf("condition skips = %d, want 1", len(skipped))
	}
}

// Property: expandIngredients is the identity on strings without
// placeholders, and known placeholders always resolve to their value.
func TestExpandIngredientsProperty(t *testing.T) {
	f := func(prefix, suffix, key, val string) bool {
		if strings.Contains(prefix, "{{") || strings.Contains(suffix, "{{") ||
			strings.Contains(key, "{{") || strings.Contains(key, "}}") || key == "" {
			return true
		}
		plain := prefix + suffix
		if expandIngredients(plain, map[string]string{key: val}) != plain {
			return false
		}
		tmpl := prefix + "{{" + key + "}}" + suffix
		return expandIngredients(tmpl, map[string]string{key: val}) == prefix+val+suffix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
