package engine

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestEngineToleratesMalformedResponses points an applet at a service
// that returns garbage; the engine must keep polling and must not
// dispatch anything. Resilience is disabled so the test pins the
// paper-faithful full-cadence behaviour; the backoff that failure
// handling layers on top is covered by resilience_test.go.
func TestEngineToleratesMalformedResponses(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(21)
	net := simnet.New(clock, rng.Split("net"))
	net.AddHost("garbage.sim", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{not json at all`))
	}))

	var traces []TraceEvent
	eng := New(Config{
		Clock: clock, RNG: rng.Split("engine"),
		Doer:       net.Client("engine.sim"),
		Poll:       FixedInterval{Interval: 5 * time.Second},
		Resilience: ResilienceConfig{Disable: true},
		Trace: func(ev TraceEvent) {
			traces = append(traces, ev)
		},
	})
	clock.Run(func() {
		eng.Install(Applet{
			ID: "g1", UserID: "u",
			Trigger: ServiceRef{Service: "garbage", BaseURL: "http://garbage.sim", Slug: "t"},
			Action:  ServiceRef{Service: "garbage", BaseURL: "http://garbage.sim", Slug: "a"},
		})
		clock.Sleep(time.Minute)
		eng.Stop()
	})
	polls, failures, actions := 0, 0, 0
	for _, ev := range traces {
		switch ev.Kind {
		case TracePollSent:
			polls++
		case TracePollFailed:
			failures++
		case TraceActionSent:
			actions++
		}
	}
	if polls < 5 {
		t.Errorf("engine gave up polling: %d polls", polls)
	}
	if failures == 0 {
		t.Error("malformed responses not surfaced as failures")
	}
	if actions != 0 {
		t.Errorf("garbage provoked %d action dispatches", actions)
	}
}

// TestEngineRetriesActionOn5xx verifies the httpx retry layer recovers
// an action whose first attempt hits a transient server error.
func TestEngineRetriesActionOn5xx(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(22)
	net := simnet.New(clock, rng.Split("net"))

	attempts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ifttt/v1/triggers/t", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"data":[{"k":"v","meta":{"id":"ev1","timestamp":1}}]}`))
	})
	mux.HandleFunc("POST /ifttt/v1/actions/a", func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"data":[{"id":"ok"}]}`))
	})
	net.AddHost("svc.sim", mux)

	var acked int
	eng := New(Config{
		Clock: clock, RNG: rng.Split("engine"),
		Doer: net.Client("engine.sim"),
		Poll: FixedInterval{Interval: 5 * time.Second},
		Trace: func(ev TraceEvent) {
			if ev.Kind == TraceActionAcked {
				acked++
			}
		},
	})
	clock.Run(func() {
		eng.Install(Applet{
			ID: "r1", UserID: "u",
			Trigger: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "t"},
			Action:  ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "a"},
		})
		clock.Sleep(30 * time.Second)
		eng.Stop()
	})
	if attempts < 2 {
		t.Fatalf("action attempted %d times, want retry", attempts)
	}
	if acked != 1 {
		t.Fatalf("acked = %d, want 1 after retry", acked)
	}
}
