package engine

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/httpx"
	"repro/internal/proto"
)

// pollOnce performs one trigger poll for an applet and dispatches the
// action for every previously unseen event, oldest first. Dispatch is
// sequential within the applet, which is what shapes a backlog of
// trigger events into the action clusters of Fig 6.
func (e *Engine) pollOnce(ra *runningApplet) {
	a := &ra.def
	req := proto.TriggerPollRequest{
		TriggerIdentity: ra.identity,
		TriggerFields:   a.Trigger.Fields,
		User:            proto.UserInfo{ID: a.UserID},
		Source:          proto.Source{ID: a.ID},
	}
	if e.pollLimit > 0 {
		limit := e.pollLimit
		req.Limit = &limit
	}
	e.emit(TraceEvent{Kind: TracePollSent, AppletID: a.ID})

	var resp proto.TriggerPollResponse
	status, err := e.client.DoJSON("POST",
		proto.TriggerURL(a.Trigger.BaseURL, a.Trigger.Slug), req, &resp,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Trigger.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+a.Trigger.UserToken),
	)
	if err != nil || status != http.StatusOK {
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(TraceEvent{Kind: TracePollFailed, AppletID: a.ID, Err: msg})
		if e.log != nil {
			e.log.Warn("trigger poll failed", "applet", a.ID, "err", msg)
		}
		return
	}

	// The wire order is newest first; execute unseen events oldest
	// first so actions replay the trigger order.
	fresh := make([]proto.TriggerEvent, 0, len(resp.Data))
	ra.mu.Lock()
	for i := len(resp.Data) - 1; i >= 0; i-- {
		ev := resp.Data[i]
		if ev.Meta.ID == "" || ra.seen[ev.Meta.ID] {
			continue
		}
		ra.seen[ev.Meta.ID] = true
		ra.seenFifo = append(ra.seenFifo, ev.Meta.ID)
		fresh = append(fresh, ev)
	}
	for len(ra.seenFifo) > e.dedupCap {
		delete(ra.seen, ra.seenFifo[0])
		ra.seenFifo = ra.seenFifo[1:]
	}
	ra.mu.Unlock()

	e.emit(TraceEvent{Kind: TracePollResult, AppletID: a.ID, N: len(fresh)})
	if len(fresh) > 0 && e.dispatch > 0 {
		e.clock.Sleep(e.dispatch)
	}
	for _, ev := range fresh {
		if !conditionsAllow(a.Conditions, e.clock.Now(), ev.Ingredients) {
			e.emit(TraceEvent{Kind: TraceConditionSkip, AppletID: a.ID, EventID: ev.Meta.ID})
			continue
		}
		e.dispatchAction(ra, ev)
	}
}

// dispatchAction POSTs one action execution, resolving {{ingredient}}
// placeholders in the action fields from the trigger event.
func (e *Engine) dispatchAction(ra *runningApplet, ev proto.TriggerEvent) {
	a := &ra.def
	fields := make(map[string]string, len(a.Action.Fields))
	for k, v := range a.Action.Fields {
		fields[k] = expandIngredients(v, ev.Ingredients)
	}
	req := proto.ActionRequest{
		ActionFields: fields,
		User:         proto.UserInfo{ID: a.UserID},
		Source:       proto.Source{ID: a.ID},
	}
	e.emit(TraceEvent{Kind: TraceActionSent, AppletID: a.ID, EventID: ev.Meta.ID})

	var ack proto.ActionResponse
	status, err := e.client.DoJSON("POST",
		proto.ActionURL(a.Action.BaseURL, a.Action.Slug), req, &ack,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Action.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+a.Action.UserToken),
	)
	if err != nil || status != http.StatusOK {
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(TraceEvent{Kind: TraceActionFailed, AppletID: a.ID, EventID: ev.Meta.ID, Err: msg})
		if e.log != nil {
			e.log.Warn("action failed", "applet", a.ID, "err", msg)
		}
		return
	}
	e.emit(TraceEvent{Kind: TraceActionAcked, AppletID: a.ID, EventID: ev.Meta.ID})
}

// deleteSubscription tells the trigger service a subscription is gone.
func (e *Engine) deleteSubscription(ra *runningApplet) {
	a := &ra.def
	url := fmt.Sprintf("%s%s%s/trigger_identity/%s",
		a.Trigger.BaseURL, proto.TriggersPath, a.Trigger.Slug, ra.identity)
	status, err := e.client.DoJSON("DELETE", url, nil, nil,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Trigger.ServiceKey))
	if (err != nil || status >= 300) && e.log != nil {
		e.log.Warn("subscription delete failed", "applet", a.ID, "status", status, "err", err)
	}
}

// expandIngredients substitutes {{key}} placeholders with trigger event
// ingredients; unknown keys expand to the empty string, mirroring
// IFTTT's lenient template behaviour.
func expandIngredients(tmpl string, ingredients map[string]string) string {
	if !strings.Contains(tmpl, "{{") {
		return tmpl
	}
	var b strings.Builder
	for {
		open := strings.Index(tmpl, "{{")
		if open < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		end := strings.Index(tmpl[open:], "}}")
		if end < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		b.WriteString(tmpl[:open])
		key := strings.TrimSpace(tmpl[open+2 : open+end])
		b.WriteString(ingredients[key])
		tmpl = tmpl[open+end+2:]
	}
}

// Handler exposes the engine's HTTP surface: the realtime notification
// endpoint partner services POST hints to.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+proto.RealtimePath, e.handleRealtime)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, e.Stats())
	})
	return httpx.Chain(mux, httpx.RequestID)
}

// handleRealtime accepts a hint and — only for allow-listed services —
// provokes an early poll after RealtimeDelay. For all other services the
// hint is acknowledged and dropped: the paper found that "using the
// real-time API brings no performance impact for our service … the
// IFTTT engine has full control over trigger event queries and very
// likely ignores real-time API's hints" (§4).
func (e *Engine) handleRealtime(w http.ResponseWriter, r *http.Request) {
	var n proto.RealtimeNotification
	if err := httpx.ReadJSON(r, &n); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, hint := range n.Data {
		var targets []*runningApplet
		switch {
		case hint.TriggerIdentity != "":
			e.mu.Lock()
			if ra := e.identities[hint.TriggerIdentity]; ra != nil {
				targets = append(targets, ra)
			}
			e.mu.Unlock()
		case hint.UserID != "":
			// A user-scoped hint covers every applet of that user.
			e.mu.Lock()
			for _, ra := range e.applets {
				if ra.def.UserID == hint.UserID {
					targets = append(targets, ra)
				}
			}
			e.mu.Unlock()
		}
		for _, ra := range targets {
			e.emit(TraceEvent{Kind: TraceHintReceived, AppletID: ra.def.ID})
			if e.realtime == nil || !e.realtime[ra.def.Trigger.Service] {
				continue // hint ignored
			}
			e.clock.AfterFunc(e.rtDelay, ra.poke)
		}
	}
	httpx.WriteJSON(w, http.StatusOK, proto.StatusResponse{OK: true})
}
