package engine

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/proto"
)

// pollSubscription performs one trigger poll for a subscription and
// fans the result out to every member applet: each member dedups the
// response against its own ring, and the action is dispatched for every
// event that member has not seen, oldest first. Dispatch is sequential
// within the poll, which is what shapes a backlog of trigger events
// into the action clusters of Fig 6. hintAt is when a realtime poke
// provoked this poll (zero for scheduled polls); every trace event of
// the execution shares one freshly drawn ExecID, and per-applet
// provenance rides on the action/skip events' AppletID.
//
// members and prep are the worker's snapshot, taken under the shard
// lock; the subscription's scratch buffers (response, fresh slice,
// ranges) are owned by this worker for the duration — a subscription is
// never polled concurrently — so the steady-state empty poll allocates
// nothing.
//
// The first return value reports whether the poll itself succeeded (a
// 200 with a decodable body); the worker feeds it to the backoff/
// breaker state machine. Action failures do not count against the
// trigger service's subscription. The second return value is the count
// of events new to the subscription — the lead member's fresh events,
// so late joiners replaying their backlog do not inflate it — which
// the worker feeds to the adaptive EWMA.
func (e *Engine) pollSubscription(sub *subscription, hintAt time.Time, members []*runningApplet, prep *httpx.Prepared) (bool, int) {
	sh := sub.shard
	leadID := members[0].def.ID
	execID := e.execSeq.Add(1)
	e.emit(sh, TraceEvent{Kind: TracePollSent, AppletID: leadID, Service: sub.trigger.Service, ExecID: execID, HintAt: hintAt})
	if n := len(members) - 1; n > 0 {
		sh.counters.pollsCoalesced.Add(int64(n))
	}
	if e.fanout != nil {
		e.fanout.Observe(float64(len(members)))
	}

	resp := &sub.resp
	resp.Data = resp.Data[:0]
	var status int
	var err error
	if prep != nil {
		status, err = e.client.DoPrepared(prep, resp)
	} else {
		// Fallback for triggers whose base URL failed to parse into a
		// prototype at install time.
		a := &members[0].def
		req := proto.TriggerPollRequest{
			TriggerIdentity: sub.key,
			TriggerFields:   a.Trigger.Fields,
			User:            proto.UserInfo{ID: a.UserID},
			Source:          proto.Source{ID: a.ID},
		}
		if e.pollLimit > 0 {
			limit := e.pollLimit
			req.Limit = &limit
		}
		status, err = e.client.DoJSON("POST",
			proto.TriggerURL(a.Trigger.BaseURL, a.Trigger.Slug), req, resp,
			httpx.WithHeader(proto.ServiceKeyHeader, a.Trigger.ServiceKey),
			httpx.WithHeader("Authorization", "Bearer "+a.Trigger.UserToken),
		)
	}
	if err != nil || status != http.StatusOK {
		// status 0 means no attempt ever got an HTTP response (pure
		// transport failure); anything else is the endpoint answering
		// with a non-200 (httpx surfaces the last received status even
		// on retry exhaustion).
		if status == 0 {
			sh.counters.pollErrTransport.Add(1)
		} else {
			sh.counters.pollErrHTTP.Add(1)
		}
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(sh, TraceEvent{Kind: TracePollFailed, AppletID: leadID, ExecID: execID, Err: msg})
		if e.log != nil {
			e.log.Warn("trigger poll failed", "applet", leadID, "err", msg)
		}
		return false, 0
	}

	// The wire order is newest first; each member executes its unseen
	// events oldest first so actions replay the trigger order. The dedup
	// rings are owned by this worker — members cannot be polled through
	// another subscription, and a removed member's ring is never touched
	// again after this poll.
	fresh := sub.fresh[:0]
	ranges := sub.ranges[:0]
	for _, ra := range members {
		start := len(fresh)
		for i := len(resp.Data) - 1; i >= 0; i-- {
			ev := resp.Data[i]
			if ev.Meta.ID == "" || !ra.dedup.Add(ev.Meta.ID) {
				continue
			}
			fresh = append(fresh, ev)
		}
		ranges = append(ranges, memberRange{ra: ra, start: start, end: len(fresh)})
	}
	sub.fresh = fresh
	sub.ranges = ranges
	newEvents := 0
	if len(ranges) > 0 {
		newEvents = ranges[0].end - ranges[0].start
	}

	// Checkpoint the dedup delta before any action dispatches: after a
	// crash these events replay as already-seen, so an action issued
	// below can never be issued again by the recovered engine.
	if e.journal != nil && len(fresh) > 0 {
		e.journalCheckpoint(sub, fresh, ranges)
	}
	e.emit(sh, TraceEvent{Kind: TracePollResult, AppletID: leadID, ExecID: execID, N: len(fresh)})
	if len(fresh) > 0 && e.dispatch > 0 {
		e.clock.Sleep(e.dispatch)
	}
	for _, mr := range ranges {
		a := &mr.ra.def
		for _, ev := range fresh[mr.start:mr.end] {
			if !conditionsAllow(a.Conditions, e.clock.Now(), ev.Ingredients) {
				e.emit(sh, TraceEvent{Kind: TraceConditionSkip, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID})
				continue
			}
			e.dispatchAction(mr.ra, ev, execID)
		}
	}
	return true, newEvents
}

// dispatchAction POSTs one action execution, resolving {{ingredient}}
// placeholders in the action fields from the trigger event.
func (e *Engine) dispatchAction(ra *runningApplet, ev proto.TriggerEvent, execID uint64) {
	a := &ra.def
	fields := make(map[string]string, len(a.Action.Fields))
	for k, v := range a.Action.Fields {
		fields[k] = expandIngredients(v, ev.Ingredients)
	}
	req := proto.ActionRequest{
		ActionFields: fields,
		User:         proto.UserInfo{ID: a.UserID},
		Source:       proto.Source{ID: a.ID},
	}
	eventTime := ev.Meta.Time()
	sh := ra.sub.shard
	e.emit(sh, TraceEvent{Kind: TraceActionSent, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID, EventTime: eventTime})

	var ack proto.ActionResponse
	status, err := e.client.DoJSON("POST",
		proto.ActionURL(a.Action.BaseURL, a.Action.Slug), req, &ack,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Action.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+a.Action.UserToken),
	)
	if err != nil || status != http.StatusOK {
		if status == 0 {
			sh.counters.actionErrTransport.Add(1)
		} else {
			sh.counters.actionErrHTTP.Add(1)
		}
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(sh, TraceEvent{Kind: TraceActionFailed, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID, Err: msg})
		if e.log != nil {
			e.log.Warn("action failed", "applet", a.ID, "err", msg)
		}
		return
	}
	e.emit(sh, TraceEvent{Kind: TraceActionAcked, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID})
}

// deleteUpstream tells the trigger service a subscription is gone (the
// protocol's DELETE /ifttt/v1/triggers/{slug}/trigger_identity/{id}).
// It runs once per subscription, when the last member leaves.
func (e *Engine) deleteUpstream(sub *subscription) {
	if e.stopped.Load() {
		// The engine stopped between the spawn and this actor running;
		// its transports may be mid-teardown, and the subscription state
		// is about to be discarded anyway.
		return
	}
	url := fmt.Sprintf("%s%s%s/trigger_identity/%s",
		sub.trigger.BaseURL, proto.TriggersPath, sub.trigger.Slug, sub.key)
	status, err := e.client.DoJSON("DELETE", url, nil, nil,
		httpx.WithHeader(proto.ServiceKeyHeader, sub.trigger.ServiceKey))
	if (err != nil || status >= 300) && e.log != nil {
		e.log.Warn("subscription delete failed", "identity", sub.key, "status", status, "err", err)
	}
}

// expandIngredients substitutes {{key}} placeholders with trigger event
// ingredients; unknown keys expand to the empty string, mirroring
// IFTTT's lenient template behaviour.
func expandIngredients(tmpl string, ingredients map[string]string) string {
	if !strings.Contains(tmpl, "{{") {
		return tmpl
	}
	var b strings.Builder
	for {
		open := strings.Index(tmpl, "{{")
		if open < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		end := strings.Index(tmpl[open:], "}}")
		if end < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		b.WriteString(tmpl[:open])
		key := strings.TrimSpace(tmpl[open+2 : open+end])
		b.WriteString(ingredients[key])
		tmpl = tmpl[open+end+2:]
	}
}

// Handler exposes the engine's HTTP surface: the realtime notification
// endpoint partner services POST hints to, the stats snapshot, the
// readiness probe, and — when the engine has a metrics registry —
// GET /metrics (Prometheus text, ?format=json for the JSON snapshot)
// plus GET /healthz and GET /debug/exemplars. With Config.SLO set,
// GET /debug/slo serves the burn-rate report and GET /debug/slowest
// the tail-retained spans.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+proto.RealtimePath, e.handleRealtime)
	if e.push {
		mux.HandleFunc("POST "+proto.PushPath, e.handlePush)
	}
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, e.Stats())
	})
	obs.Mount(mux, e.metrics)
	mux.Handle("GET /readyz", e.Readiness())
	if e.metrics != nil {
		mux.Handle("GET /debug/exemplars", obs.ExemplarsHandler(e.metrics))
	}
	if e.slo != nil {
		mux.Handle("GET /debug/slo", e.slo)
		mux.Handle("GET /debug/slowest", e.tail)
	}
	return httpx.Chain(mux, httpx.RequestID)
}

// handleRealtime accepts a hint and — only for allow-listed services —
// provokes an early poll after RealtimeDelay. For all other services the
// hint is acknowledged and dropped: the paper found that "using the
// real-time API brings no performance impact for our service … the
// IFTTT engine has full control over trigger event queries and very
// likely ignores real-time API's hints" (§4).
//
// Every notification is traced and counted exactly once, whether or not
// it resolves to an installed applet — a hint racing an applet's
// removal must still show up in the engine's metrics. Identity hints
// resolve against the per-shard subscription indexes; user hints
// against the engine's user index, deduplicated to subscriptions so a
// shared identity is poked — and therefore polled — exactly once no
// matter how many of the user's applets share it.
func (e *Engine) handleRealtime(w http.ResponseWriter, r *http.Request) {
	var n proto.RealtimeNotification
	if err := httpx.ReadJSON(r, &n); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, hint := range n.Data {
		e.ApplyHint(hint)
	}
	httpx.WriteJSON(w, http.StatusOK, proto.StatusResponse{OK: true})
}

// ApplyHint processes one realtime hint exactly as the notifications
// endpoint does — trace + count it, then (for allow-listed services
// only) schedule the early poll. Exported so a cluster router can
// forward hints to the owning node without an HTTP round-trip.
func (e *Engine) ApplyHint(hint proto.RealtimeHint) {
	var targets []*subscription
	var firstID string
	var nApplets int
	switch {
	case hint.TriggerIdentity != "":
		for _, sh := range e.shards {
			if sub, first, members := sh.byIdentity(hint.TriggerIdentity); sub != nil {
				targets = append(targets, sub)
				firstID = first
				nApplets = members
				break
			}
		}
	case hint.UserID != "":
		// A user-scoped hint covers every applet of that user.
		targets, firstID, nApplets = e.userSubscriptions(hint.UserID)
	}
	ev := TraceEvent{Kind: TraceHintReceived, N: nApplets}
	if nApplets > 0 {
		ev.AppletID = firstID
	}
	e.emit(nil, ev)
	for _, sub := range targets {
		if e.realtime == nil || !e.realtime[sub.trigger.Service] {
			continue // hint ignored
		}
		sub := sub
		e.clock.AfterFunc(e.rtDelay, func() { e.pokeSubscription(sub) })
	}
}

// userSubscriptions resolves a user ID to the distinct subscriptions
// the user's applets poll through, plus one member applet ID and the
// total applet count (for hint tracing).
func (e *Engine) userSubscriptions(userID string) ([]*subscription, string, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	owned := e.byUser[userID]
	if len(owned) == 0 {
		return nil, "", 0
	}
	targets := make([]*subscription, 0, len(owned))
	seen := make(map[*subscription]struct{}, len(owned))
	var firstID string
	for id, ra := range owned {
		if firstID == "" {
			firstID = id
		}
		if _, dup := seen[ra.sub]; dup {
			continue
		}
		seen[ra.sub] = struct{}{}
		targets = append(targets, ra.sub)
	}
	return targets, firstID, len(owned)
}

// pokeSubscription pulls a subscription's next poll forward to now (the
// honoured realtime-hint path). Pokes for removed or mid-poll
// subscriptions are silently dropped, as with the old per-goroutine
// design. Under adaptive polling a hint also spikes the subscription's
// rate estimate: a push-assisted identity whose events always arrive
// via hints would otherwise look cold to the EWMA (each provoked poll
// finds one event after a short gap only because the hint moved it),
// so the spike pins its cadence near the fast floor until the estimate
// decays naturally.
func (e *Engine) pokeSubscription(sub *subscription) {
	sh := sub.shard
	sh.mu.Lock()
	if ap := e.adaptive; ap != nil && ap.boost > 0 && sub.rate < ap.boost && !sub.removed {
		// Stamp the estimate as fresh: leaving rateAt at the last poll
		// would let the next EWMA update decay the spike across the
		// whole pre-hint silence, erasing it.
		sub.rate = ap.boost
		sub.rateAt = e.clock.Now()
	}
	sh.pokeLocked(sub, e.clock.Now())
	sh.mu.Unlock()
}
