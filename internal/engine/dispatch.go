package engine

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/proto"
)

// pollOnce performs one trigger poll for an applet and dispatches the
// action for every previously unseen event, oldest first. Dispatch is
// sequential within the applet, which is what shapes a backlog of
// trigger events into the action clusters of Fig 6. hintAt is when a
// realtime poke provoked this poll (zero for scheduled polls); every
// trace event of the execution shares one freshly drawn ExecID.
func (e *Engine) pollOnce(ra *runningApplet, hintAt time.Time) {
	a := &ra.def
	req := proto.TriggerPollRequest{
		TriggerIdentity: ra.identity,
		TriggerFields:   a.Trigger.Fields,
		User:            proto.UserInfo{ID: a.UserID},
		Source:          proto.Source{ID: a.ID},
	}
	if e.pollLimit > 0 {
		limit := e.pollLimit
		req.Limit = &limit
	}
	sh := ra.shard
	execID := e.execSeq.Add(1)
	e.emit(sh, TraceEvent{Kind: TracePollSent, AppletID: a.ID, ExecID: execID, HintAt: hintAt})

	var resp proto.TriggerPollResponse
	status, err := e.client.DoJSON("POST",
		proto.TriggerURL(a.Trigger.BaseURL, a.Trigger.Slug), req, &resp,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Trigger.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+a.Trigger.UserToken),
	)
	if err != nil || status != http.StatusOK {
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(sh, TraceEvent{Kind: TracePollFailed, AppletID: a.ID, ExecID: execID, Err: msg})
		if e.log != nil {
			e.log.Warn("trigger poll failed", "applet", a.ID, "err", msg)
		}
		return
	}

	// The wire order is newest first; execute unseen events oldest
	// first so actions replay the trigger order. The dedup ring is
	// owned by this worker — the applet cannot be polled concurrently.
	fresh := make([]proto.TriggerEvent, 0, len(resp.Data))
	for i := len(resp.Data) - 1; i >= 0; i-- {
		ev := resp.Data[i]
		if ev.Meta.ID == "" || !ra.dedup.Add(ev.Meta.ID) {
			continue
		}
		fresh = append(fresh, ev)
	}

	e.emit(sh, TraceEvent{Kind: TracePollResult, AppletID: a.ID, ExecID: execID, N: len(fresh)})
	if len(fresh) > 0 && e.dispatch > 0 {
		e.clock.Sleep(e.dispatch)
	}
	for _, ev := range fresh {
		if !conditionsAllow(a.Conditions, e.clock.Now(), ev.Ingredients) {
			e.emit(sh, TraceEvent{Kind: TraceConditionSkip, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID})
			continue
		}
		e.dispatchAction(ra, ev, execID)
	}
}

// dispatchAction POSTs one action execution, resolving {{ingredient}}
// placeholders in the action fields from the trigger event.
func (e *Engine) dispatchAction(ra *runningApplet, ev proto.TriggerEvent, execID uint64) {
	a := &ra.def
	fields := make(map[string]string, len(a.Action.Fields))
	for k, v := range a.Action.Fields {
		fields[k] = expandIngredients(v, ev.Ingredients)
	}
	req := proto.ActionRequest{
		ActionFields: fields,
		User:         proto.UserInfo{ID: a.UserID},
		Source:       proto.Source{ID: a.ID},
	}
	var eventTime time.Time
	if ev.Meta.Timestamp > 0 {
		eventTime = time.Unix(ev.Meta.Timestamp, 0)
	}
	e.emit(ra.shard, TraceEvent{Kind: TraceActionSent, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID, EventTime: eventTime})

	var ack proto.ActionResponse
	status, err := e.client.DoJSON("POST",
		proto.ActionURL(a.Action.BaseURL, a.Action.Slug), req, &ack,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Action.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+a.Action.UserToken),
	)
	if err != nil || status != http.StatusOK {
		msg := "status " + http.StatusText(status)
		if err != nil {
			msg = err.Error()
		}
		e.emit(ra.shard, TraceEvent{Kind: TraceActionFailed, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID, Err: msg})
		if e.log != nil {
			e.log.Warn("action failed", "applet", a.ID, "err", msg)
		}
		return
	}
	e.emit(ra.shard, TraceEvent{Kind: TraceActionAcked, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID})
}

// deleteSubscription tells the trigger service a subscription is gone.
func (e *Engine) deleteSubscription(ra *runningApplet) {
	a := &ra.def
	url := fmt.Sprintf("%s%s%s/trigger_identity/%s",
		a.Trigger.BaseURL, proto.TriggersPath, a.Trigger.Slug, ra.identity)
	status, err := e.client.DoJSON("DELETE", url, nil, nil,
		httpx.WithHeader(proto.ServiceKeyHeader, a.Trigger.ServiceKey))
	if (err != nil || status >= 300) && e.log != nil {
		e.log.Warn("subscription delete failed", "applet", a.ID, "status", status, "err", err)
	}
}

// expandIngredients substitutes {{key}} placeholders with trigger event
// ingredients; unknown keys expand to the empty string, mirroring
// IFTTT's lenient template behaviour.
func expandIngredients(tmpl string, ingredients map[string]string) string {
	if !strings.Contains(tmpl, "{{") {
		return tmpl
	}
	var b strings.Builder
	for {
		open := strings.Index(tmpl, "{{")
		if open < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		end := strings.Index(tmpl[open:], "}}")
		if end < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		b.WriteString(tmpl[:open])
		key := strings.TrimSpace(tmpl[open+2 : open+end])
		b.WriteString(ingredients[key])
		tmpl = tmpl[open+end+2:]
	}
}

// Handler exposes the engine's HTTP surface: the realtime notification
// endpoint partner services POST hints to, the stats snapshot, and —
// when the engine has a metrics registry — GET /metrics (Prometheus
// text, ?format=json for the JSON snapshot) plus GET /healthz.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+proto.RealtimePath, e.handleRealtime)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, e.Stats())
	})
	obs.Mount(mux, e.metrics)
	return httpx.Chain(mux, httpx.RequestID)
}

// handleRealtime accepts a hint and — only for allow-listed services —
// provokes an early poll after RealtimeDelay. For all other services the
// hint is acknowledged and dropped: the paper found that "using the
// real-time API brings no performance impact for our service … the
// IFTTT engine has full control over trigger event queries and very
// likely ignores real-time API's hints" (§4).
//
// Every notification is traced and counted exactly once, whether or not
// it resolves to an installed applet — a hint racing an applet's
// removal must still show up in the engine's metrics. Identity hints
// resolve against the per-shard identity indexes; user hints against
// the per-shard user indexes, so routing costs O(shards +
// applets-of-user) rather than a scan of the whole population.
func (e *Engine) handleRealtime(w http.ResponseWriter, r *http.Request) {
	var n proto.RealtimeNotification
	if err := httpx.ReadJSON(r, &n); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, hint := range n.Data {
		var targets []*runningApplet
		switch {
		case hint.TriggerIdentity != "":
			for _, sh := range e.shards {
				if ra := sh.byIdentity(hint.TriggerIdentity); ra != nil {
					targets = append(targets, ra)
					break
				}
			}
		case hint.UserID != "":
			// A user-scoped hint covers every applet of that user.
			for _, sh := range e.shards {
				targets = sh.userApplets(targets, hint.UserID)
			}
		}
		ev := TraceEvent{Kind: TraceHintReceived, N: len(targets)}
		if len(targets) > 0 {
			ev.AppletID = targets[0].def.ID
		}
		e.emit(nil, ev)
		for _, ra := range targets {
			if e.realtime == nil || !e.realtime[ra.def.Trigger.Service] {
				continue // hint ignored
			}
			ra := ra
			e.clock.AfterFunc(e.rtDelay, func() { e.pokeApplet(ra) })
		}
	}
	httpx.WriteJSON(w, http.StatusOK, proto.StatusResponse{OK: true})
}

// pokeApplet pulls an applet's next poll forward to now (the honoured
// realtime-hint path). Pokes for removed or mid-poll applets are
// silently dropped, as with the old per-goroutine design.
func (e *Engine) pokeApplet(ra *runningApplet) {
	sh := ra.shard
	sh.mu.Lock()
	sh.pokeLocked(ra, e.clock.Now())
	sh.mu.Unlock()
}
