package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// rig wires an engine and one partner service over a simulated network.
type rig struct {
	clock  *simtime.SimClock
	net    *simnet.Network
	engine *Engine
	svc    *service.Service

	mu     sync.Mutex
	traces []TraceEvent
}

func newRig(t *testing.T, poll PollPolicy, realtime map[string]bool) *rig {
	t.Helper()
	return newRigCfg(t, poll, realtime, nil)
}

// newRigCfg is newRig with a hook to adjust the engine config (e.g.
// enabling poll coalescing) before construction.
func newRigCfg(t *testing.T, poll PollPolicy, realtime map[string]bool, mod func(*Config)) *rig {
	t.Helper()
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(11)
	net := simnet.New(clock, rng.Split("net"))
	net.SetDefaultLink(simnet.Link{Latency: stats.Constant(0.02)})

	svc := service.New(service.Config{Name: "testsvc", Clock: clock, ServiceKey: "k"})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "fired"})
	svc.RegisterAction(service.ActionSpec{
		Slug:    "act",
		Execute: func(map[string]string, proto.UserInfo) error { return nil },
	})
	net.AddHost("svc.sim", svc.Handler())

	r := &rig{clock: clock, net: net, svc: svc}
	cfg := Config{
		Clock:            clock,
		RNG:              rng.Split("engine"),
		Doer:             net.Client("engine.sim"),
		Poll:             poll,
		RealtimeServices: realtime,
		Trace: func(ev TraceEvent) {
			r.mu.Lock()
			r.traces = append(r.traces, ev)
			r.mu.Unlock()
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	r.engine = New(cfg)
	net.AddHost("engine.sim", r.engine.Handler())
	return r
}

func (r *rig) applet(id string) Applet {
	return Applet{
		ID:     id,
		Name:   "test applet " + id,
		UserID: "u1",
		Trigger: ServiceRef{
			Service: "testsvc", BaseURL: "http://svc.sim", Slug: "fired", ServiceKey: "k",
		},
		Action: ServiceRef{
			Service: "testsvc", BaseURL: "http://svc.sim", Slug: "act", ServiceKey: "k",
		},
	}
}

func (r *rig) tracesOf(kind TraceKind) []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceEvent
	for _, ev := range r.traces {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func TestEngineExecutesTriggerToAction(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		if err := r.engine.Install(r.applet("a1")); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Let the first poll create the subscription, then fire.
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"k": "v"})
		r.clock.Sleep(30 * time.Second)
		r.engine.Stop()
	})

	acked := r.tracesOf(TraceActionAcked)
	if len(acked) != 1 {
		t.Fatalf("actions acked = %d, want 1", len(acked))
	}
	if got := r.svc.Stats().Actions; got != 1 {
		t.Fatalf("service executed %d actions", got)
	}
}

func TestEngineDeduplicatesAcrossPolls(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		// Several polling rounds re-serve the same buffered event.
		r.clock.Sleep(60 * time.Second)
		r.engine.Stop()
	})
	if acked := r.tracesOf(TraceActionAcked); len(acked) != 1 {
		t.Fatalf("event executed %d times, want exactly once", len(acked))
	}
	if polls := r.tracesOf(TracePollSent); len(polls) < 5 {
		t.Fatalf("expected many polls, got %d", len(polls))
	}
}

func TestEngineBatchesBacklog(t *testing.T) {
	// Events accumulated during one long gap arrive as one cluster.
	r := newRig(t, FixedInterval{Interval: 2 * time.Minute}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(2*time.Minute + time.Second) // subscription made
		for i := 0; i < 8; i++ {
			r.svc.Publish("fired", map[string]string{"n": string(rune('0' + i))})
			r.clock.Sleep(5 * time.Second)
		}
		r.clock.Sleep(3 * time.Minute)
		r.engine.Stop()
	})
	results := r.tracesOf(TracePollResult)
	var batched int
	for _, ev := range results {
		if ev.N > 1 {
			batched = ev.N
		}
	}
	if batched < 5 {
		t.Fatalf("no clustered poll result found (max batch %d)", batched)
	}
	if acked := r.tracesOf(TraceActionAcked); len(acked) != 8 {
		t.Fatalf("acked %d actions, want 8", len(acked))
	}
}

func TestRealtimeHintHonoredOnlyForAllowlist(t *testing.T) {
	measure := func(allowed bool) time.Duration {
		var rt map[string]bool
		if allowed {
			rt = map[string]bool{"testsvc": true}
		}
		r := newRig(t, FixedInterval{Interval: 10 * time.Minute}, rt)
		// Wire the service's realtime hints at the engine.
		r.svc = service.New(service.Config{
			Name: "testsvc", Clock: r.clock, ServiceKey: "k",
			Realtime: &service.RealtimeConfig{
				URL:        "http://engine.sim" + proto.RealtimePath,
				Client:     httpx.NewClient(r.net.Client("svc.sim"), r.clock, 0),
				ServiceKey: "k",
			},
		})
		r.svc.RegisterTrigger(service.TriggerSpec{Slug: "fired"})
		r.svc.RegisterAction(service.ActionSpec{
			Slug:    "act",
			Execute: func(map[string]string, proto.UserInfo) error { return nil },
		})
		r.net.AddHost("svc.sim", r.svc.Handler())

		var t2a time.Duration
		r.clock.Run(func() {
			r.engine.Install(r.applet("a1"))
			r.clock.Sleep(10*time.Minute + time.Second) // first poll done
			fired := r.clock.Now()
			r.svc.Publish("fired", map[string]string{"k": "v"})
			r.clock.Sleep(12 * time.Minute)
			acked := r.tracesOf(TraceActionAcked)
			if len(acked) != 1 {
				t.Errorf("allowed=%v: acked %d actions", allowed, len(acked))
			} else {
				t2a = acked[0].Time.Sub(fired)
			}
			r.engine.Stop()
		})
		return t2a
	}

	fast := measure(true)
	slow := measure(false)
	if fast > 10*time.Second {
		t.Errorf("allow-listed hint latency = %v, want seconds", fast)
	}
	if slow < time.Minute {
		t.Errorf("ignored hint latency = %v, want full polling gap", slow)
	}
}

func TestEngineIndependentPollingPerApplet(t *testing.T) {
	// Two applets sharing a trigger poll independently: their polls are
	// not synchronized (Fig 7's root cause).
	r := newRig(t, NewPaperPollModel(), nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.engine.Install(r.applet("a2"))
		r.clock.Sleep(2 * time.Hour)
		r.engine.Stop()
	})
	var t1, t2 []time.Time
	for _, ev := range r.tracesOf(TracePollSent) {
		switch ev.AppletID {
		case "a1":
			t1 = append(t1, ev.Time)
		case "a2":
			t2 = append(t2, ev.Time)
		}
	}
	if len(t1) < 5 || len(t2) < 5 {
		t.Fatalf("too few polls: %d, %d", len(t1), len(t2))
	}
	// If schedules were shared, poll times would coincide.
	same := 0
	for i := 0; i < len(t1) && i < len(t2); i++ {
		if t1[i].Equal(t2[i]) {
			same++
		}
	}
	if same == len(t1) {
		t.Fatal("applet polls are synchronized; expected independent schedules")
	}
}

func TestEngineRemoveStopsPolling(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(12 * time.Second)
		r.engine.Remove("a1")
		before := len(r.tracesOf(TracePollSent))
		r.clock.Sleep(time.Minute)
		after := len(r.tracesOf(TracePollSent))
		if after != before {
			t.Errorf("polls continued after Remove: %d → %d", before, after)
		}
		if got := len(r.engine.Applets()); got != 0 {
			t.Errorf("Applets() = %d entries after Remove", got)
		}
		r.engine.Stop()
	})
}

func TestEngineDuplicateInstall(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: time.Second}, nil)
	r.clock.Run(func() {
		if err := r.engine.Install(r.applet("dup")); err != nil {
			t.Errorf("first install: %v", err)
		}
		if err := r.engine.Install(r.applet("dup")); err == nil {
			t.Error("duplicate install accepted")
		}
		r.engine.Stop()
	})
}

func TestEngineInstallAfterStop(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Stop()
		if err := r.engine.Install(r.applet("late")); err == nil {
			t.Error("install after Stop accepted")
		}
	})
}

func TestEngineSurvivesServiceOutage(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(7 * time.Second)
		r.net.SetHostDown("svc.sim", true)
		r.clock.Sleep(20 * time.Second)
		r.net.SetHostDown("svc.sim", false)
		r.clock.Sleep(time.Second)
		r.svc.Publish("fired", map[string]string{"k": "v"})
		r.clock.Sleep(30 * time.Second)
		r.engine.Stop()
	})
	if failed := r.tracesOf(TracePollFailed); len(failed) == 0 {
		t.Fatal("no poll failures recorded during outage")
	}
	if acked := r.tracesOf(TraceActionAcked); len(acked) != 1 {
		t.Fatalf("acked %d actions after recovery, want 1", len(acked))
	}
}

func TestExpandIngredients(t *testing.T) {
	ing := map[string]string{"subject": "hello", "from": "a@b"}
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"{{subject}}", "hello"},
		{"mail from {{from}}: {{subject}}", "mail from a@b: hello"},
		{"{{ subject }}", "hello"},
		{"{{missing}}!", "!"},
		{"{{unclosed", "{{unclosed"},
	}
	for _, c := range cases {
		if got := expandIngredients(c.in, ing); got != c.want {
			t.Errorf("expand(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTriggerIdentityStableAndDistinct(t *testing.T) {
	a := Applet{ID: "x", Trigger: ServiceRef{BaseURL: "http://s", Slug: "t",
		Fields: map[string]string{"a": "1", "b": "2"}}}
	b := Applet{ID: "x", Trigger: ServiceRef{BaseURL: "http://s", Slug: "t",
		Fields: map[string]string{"b": "2", "a": "1"}}}
	if a.TriggerIdentity() != b.TriggerIdentity() {
		t.Error("identity depends on map iteration order")
	}
	c := a
	c.ID = "y"
	if a.TriggerIdentity() == c.TriggerIdentity() {
		t.Error("distinct applets share an identity")
	}
}

func TestPaperPollModelRange(t *testing.T) {
	m := NewPaperPollModel()
	g := stats.NewRNG(3)
	var inflated int
	for i := 0; i < 20000; i++ {
		gap := m.NextGap("a1", "any", g)
		if gap < m.Min || gap > m.Max {
			t.Fatalf("gap %v outside [%v, %v]", gap, m.Min, m.Max)
		}
		if gap > 8*time.Minute {
			inflated++
		}
	}
	if inflated == 0 {
		t.Fatal("inflation regime never sampled; Fig 6's 14-minute tail unreachable")
	}
}

// recordingPolicy captures the arguments PerService forwards, proving
// dispatch passes the applet identity through to the chosen policy.
type recordingPolicy struct {
	gap     time.Duration
	applet  string
	service string
	calls   int
}

func (p *recordingPolicy) NextGap(appletID, service string, _ *stats.RNG) time.Duration {
	p.applet, p.service = appletID, service
	p.calls++
	return p.gap
}

func TestPerServicePolicy(t *testing.T) {
	alexa := &recordingPolicy{gap: time.Second}
	def := &recordingPolicy{gap: time.Minute}
	p := PerService{
		Overrides: map[string]PollPolicy{"alexa": alexa},
		Default:   def,
	}
	g := stats.NewRNG(4)
	if got := p.NextGap("a1", "alexa", g); got != time.Second {
		t.Errorf("alexa gap = %v", got)
	}
	if alexa.applet != "a1" || alexa.service != "alexa" {
		t.Errorf("override saw (%q, %q), want (a1, alexa)", alexa.applet, alexa.service)
	}
	if def.calls != 0 {
		t.Errorf("default consulted %d times for an overridden service", def.calls)
	}
	// Any service without an override — including none at all — falls
	// through to the default, with arguments intact.
	if got := p.NextGap("a2", "hue", g); got != time.Minute {
		t.Errorf("hue gap = %v", got)
	}
	if def.applet != "a2" || def.service != "hue" {
		t.Errorf("default saw (%q, %q), want (a2, hue)", def.applet, def.service)
	}
	none := PerService{Default: FixedInterval{Interval: 30 * time.Second}}
	if got := none.NextGap("a3", "alexa", g); got != 30*time.Second {
		t.Errorf("nil-overrides gap = %v", got)
	}
	// Per-applet policies compose under an override: a SmartPolicy
	// scoped to one service still distinguishes hot applets.
	smart := PerService{
		Overrides: map[string]PollPolicy{"alexa": SmartPolicy{
			Hot: map[string]bool{"vip": true}, Fast: 2 * time.Second, Slow: 20 * time.Second,
		}},
		Default: def,
	}
	if got := smart.NextGap("vip", "alexa", g); got != 2*time.Second {
		t.Errorf("hot applet through override = %v", got)
	}
	if got := smart.NextGap("a9", "alexa", g); got != 20*time.Second {
		t.Errorf("cold applet through override = %v", got)
	}
}
