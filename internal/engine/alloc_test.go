package engine

import (
	"fmt"
	"testing"
)

// TestExpandIngredientsEdgeCases covers the template corners the basic
// round-trip test misses: a closer with no opener, unclosed openers
// with text on both sides, empty keys, and adjacent placeholders.
func TestExpandIngredientsEdgeCases(t *testing.T) {
	ing := map[string]string{"a": "1", "b": "2", "": "empty"}
	cases := []struct{ in, want string }{
		// Unclosed opener: everything from the opener on is literal.
		{"pre {{a", "pre {{a"},
		{"{{a}} then {{b", "1 then {{b"},
		// A bare closer with no opener is plain text.
		{"no open }} here", "no open }} here"},
		// Empty key resolves like any other (and is present here).
		{"{{}}", "empty"},
		// Whitespace-only key trims to the empty key.
		{"{{  }}", "empty"},
		// Adjacent placeholders with nothing between them.
		{"{{a}}{{b}}", "12"},
		{"{{a}}{{a}}{{a}}", "111"},
		// Placeholder butted against braces.
		{"{{{a}}}", "}"}, // key "{a" is unknown → empty; trailing "}" stays
		{"", ""},
	}
	for _, c := range cases {
		if got := expandIngredients(c.in, ing); got != c.want {
			t.Errorf("expand(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Allocation regression guards for the per-event dispatch path. These
// are exact: both fast paths are pure reads today, and any future
// allocation on them multiplies by events × applets × polls.

func TestExpandIngredientsNoPlaceholderAllocs(t *testing.T) {
	ing := map[string]string{"subject": "hello"}
	allocs := testing.AllocsPerRun(100, func() {
		expandIngredients("a plain action field without templates", ing)
	})
	if allocs != 0 {
		t.Errorf("expandIngredients without placeholders allocates %.1f/op, want 0", allocs)
	}
}

func TestDedupRingDuplicateAddAllocs(t *testing.T) {
	r := newDedupRing(64)
	for i := 0; i < 64; i++ {
		r.Add(fmt.Sprintf("ev-%03d", i))
	}
	// The steady state of a quiet trigger: every poll re-serves event
	// IDs the ring already remembers.
	allocs := testing.AllocsPerRun(100, func() {
		if r.Add("ev-007") {
			t.Fatal("duplicate reported fresh")
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate dedupRing.Add allocates %.1f/op, want 0", allocs)
	}
}
