package engine

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/stats"
)

// stubDoer answers every poll with an empty event list and every other
// request with a bare 200, without touching the network or the clock.
// It lets scale tests run tens of thousands of applets where a full
// simnet round trip per poll would dominate.
type stubDoer struct{}

func (stubDoer) Do(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(`{"data":[]}`)),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

func scaleApplet(i int) Applet {
	id := fmt.Sprintf("a%05d", i)
	return Applet{
		ID:     id,
		UserID: fmt.Sprintf("u%04d", i%1000), // ~50 applets per user
		Trigger: ServiceRef{
			Service: "scalesvc", BaseURL: "http://svc.sim", Slug: "fired",
			Fields: map[string]string{"n": id},
		},
		Action: ServiceRef{
			Service: "scalesvc", BaseURL: "http://svc.sim", Slug: "act",
		},
	}
}

// TestEngineScaleSoak runs ~50K applets through install, polling, hint
// and removal churn on the simulated clock, and checks the scheduler's
// core scaling claim: goroutines stay O(shards + workers) rather than
// O(applets). Run under -race by scripts/verify.sh.
func TestEngineScaleSoak(t *testing.T) {
	n := 50_000
	if testing.Short() {
		n = 5_000
	}
	const shards, workers = 8, 8

	clock := simtime.NewSimDefault()
	eng := New(Config{
		Clock:            clock,
		RNG:              stats.NewRNG(7),
		Doer:             stubDoer{},
		Poll:             FixedInterval{Interval: 5 * time.Minute},
		RealtimeServices: map[string]bool{"scalesvc": true},
		DispatchDelay:    -1,
		Shards:           shards,
		ShardWorkers:     workers,
	})
	r := &rig{engine: eng} // for postHints

	baseline := runtime.NumGoroutine()
	var peak int
	sample := func() {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
	}

	clock.Run(func() {
		for i := 0; i < n; i++ {
			if err := eng.Install(scaleApplet(i)); err != nil {
				t.Fatalf("install %d: %v", i, err)
			}
		}
		sample()
		if got := len(eng.Applets()); got != n {
			t.Fatalf("installed %d applets, want %d", got, n)
		}

		// First polling round (all due at +5m), then churn: remove a
		// tenth, hint a few hundred users, install replacements.
		clock.Sleep(5*time.Minute + time.Second)
		sample()
		for i := 0; i < n/10; i++ {
			eng.Remove(scaleApplet(i).ID)
		}
		for u := 0; u < 200; u++ {
			r.postHints(t, fmt.Sprintf(`{"data":[{"user_id":"u%04d"}]}`, 100+u))
		}
		for i := n; i < n+n/50; i++ {
			if err := eng.Install(scaleApplet(i)); err != nil {
				t.Fatalf("reinstall %d: %v", i, err)
			}
		}
		clock.Sleep(10 * time.Minute)
		sample()
		eng.Stop()
	})

	st := eng.Stats()
	if want := n - n/10 + n/50; st.Applets != want {
		t.Errorf("Applets = %d, want %d", st.Applets, want)
	}
	if st.HintsReceived != 200 {
		t.Errorf("HintsReceived = %d, want 200", st.HintsReceived)
	}
	// Every applet alive at +5m polls in round one; survivors poll at
	// least twice more in the following 10 minutes.
	if min := int64(2 * n); st.Polls < min {
		t.Errorf("Polls = %d, want ≥ %d", st.Polls, min)
	}
	if st.PollFailures != 0 {
		t.Errorf("PollFailures = %d, want 0", st.PollFailures)
	}

	// The scaling claim. The old design held one goroutine per applet
	// (peak ≈ n); the sharded scheduler needs only pumps + in-flight
	// workers + simulation bookkeeping.
	bound := baseline + shards*(workers+1) + 100
	if peak > bound {
		t.Errorf("peak goroutines = %d (baseline %d), want ≤ %d — scheduler is not O(shards+workers)",
			peak, baseline, bound)
	}
	t.Logf("n=%d polls=%d peak goroutines=%d (baseline %d)", n, st.Polls, peak, baseline)
}

// TestEngineScaleDeterministic re-runs a small population twice with the
// same seed and checks the poll schedules agree — the per-shard RNG
// split must not depend on timing or map iteration order.
func TestEngineScaleDeterministic(t *testing.T) {
	run := func() map[string]int64 {
		clock := simtime.NewSimDefault()
		var mu sync.Mutex
		polls := make(map[string]int64)
		eng := New(Config{
			Clock:         clock,
			RNG:           stats.NewRNG(7),
			Doer:          stubDoer{},
			Poll:          NewPaperPollModel(),
			DispatchDelay: -1,
			Shards:        4,
			Trace: func(ev TraceEvent) {
				if ev.Kind == TracePollSent {
					mu.Lock()
					polls[ev.AppletID+"@"+fmt.Sprint(ev.Time.UnixNano())]++
					mu.Unlock()
				}
			},
		})
		clock.Run(func() {
			for i := 0; i < 500; i++ {
				eng.Install(scaleApplet(i))
			}
			clock.Sleep(30 * time.Minute)
			eng.Stop()
		})
		return polls
	}

	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d poll instants", len(a), len(b))
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			t.Fatalf("poll %s only in first run; schedules are not deterministic", k)
		}
	}
}
