package engine

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
	"repro/internal/ingest"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// subscription is the unit the poll scheduler works in: one upstream
// trigger subscription shared by every member applet whose trigger
// configuration hashes to the same key. Without coalescing the key is
// the applet's own TriggerIdentity, so every subscription has exactly
// one member and the engine polls per applet as the paper observed
// (Fig 7). With coalescing (Config.Coalesce) the key drops the applet
// ID, so applets of one user watching the same trigger share one
// upstream poll whose fresh events fan out to every member.
//
// The mutable scheduling fields (members, entry, polling, removed,
// hintAt, prep, leadID) are guarded by the owning shard's mutex. rng
// and the scratch fields are touched only by the single actor that has
// the subscription in flight: polling is the execution-ownership flag —
// set by a poll worker or by the push ingress consumer (ingress.go)
// under the shard lock before dispatching, cleared (after draining
// pushPending) when done — so a subscription never executes on two
// goroutines at once and the scratch buffers need no further locking.
type subscription struct {
	key     string // grouping key, presented on the wire as trigger_identity
	shard   *shard
	rng     *stats.RNG // gap stream, split when the subscription is created
	trigger ServiceRef // trigger config shared by all members
	user    string     // owning user (part of the key under coalescing)

	// leadID is the applet whose ID anchors gap draws and the request
	// prototype's Source; it is the oldest surviving member.
	leadID  string
	members []*runningApplet
	entry   *pollEntry // pending poll, nil while in flight
	polling bool
	removed bool
	// hintAt records when a realtime poke rescheduled the pending poll;
	// the worker consumes it so the poll's trace carries hint provenance.
	hintAt time.Time
	// prep is the precomputed poll request (URL, headers, body); rebuilt
	// under the shard lock whenever the lead member changes. Nil when
	// the trigger's base URL does not parse — the poll path then falls
	// back to building requests per call.
	prep *httpx.Prepared

	// Failure-handling state (resilience.go), guarded by the shard's
	// mutex like the scheduling fields above. failStreak counts
	// consecutive poll failures; brState is the circuit breaker.
	failStreak int
	brState    breakerState

	// Adaptive-polling state (adaptive.go), guarded by the shard's
	// mutex. rate is the EWMA event-rate estimate (events/sec); rateAt
	// is the estimate's last update instant. reserved marks a poll the
	// admission controller deferred — it already holds its budget
	// token, so it must not be charged again when its turn comes.
	// pollCount tallies polls issued for this subscription.
	rate      float64
	rateAt    time.Time
	reserved  bool
	pollCount int64

	// pushPending parks push deliveries that arrived while another
	// execution (poll or push) owned the subscription; the owner drains
	// it before releasing the polling flag, so pushed events are never
	// lost to the ownership race and never dispatch concurrently.
	// Guarded by the shard's mutex.
	pushPending []pendingPush

	// retire parks members removed while an execution owned the
	// subscription: their dedup rings may still be absorbing this
	// execution's events, so the owner retains them (journal.go) on its
	// release path, when the rings are final. Guarded by the shard's
	// mutex.
	retire []*runningApplet

	// Worker-owned scratch, reused across polls so the steady-state poll
	// path allocates nothing for the common empty-result case.
	resp   proto.TriggerPollResponse
	fresh  []proto.TriggerEvent
	ranges []memberRange
	snap   []*runningApplet
}

// pendingPush is one deferred push delivery: events for a subscription
// that was mid-execution when they arrived, plus their ingress-accept
// instant for the span's ingest segment.
type pendingPush struct {
	events []proto.TriggerEvent
	at     time.Time
}

// memberRange marks one member's slice of a poll's shared fresh-event
// buffer.
type memberRange struct {
	ra         *runningApplet
	start, end int
}

// rebuildPrepLocked recomputes the subscription's request prototype from
// its lead member. Caller holds the shard's mutex.
func (sub *subscription) rebuildPrepLocked(e *Engine) {
	lead := &sub.members[0].def
	sub.leadID = lead.ID
	req := proto.TriggerPollRequest{
		TriggerIdentity: sub.key,
		TriggerFields:   lead.Trigger.Fields,
		User:            proto.UserInfo{ID: lead.UserID},
		Source:          proto.Source{ID: lead.ID},
	}
	if e.pollLimit > 0 {
		limit := e.pollLimit
		req.Limit = &limit
	}
	prep, err := httpx.NewPrepared("POST",
		proto.TriggerURL(lead.Trigger.BaseURL, lead.Trigger.Slug), req,
		httpx.WithHeader(proto.ServiceKeyHeader, lead.Trigger.ServiceKey),
		httpx.WithHeader("Authorization", "Bearer "+lead.Trigger.UserToken),
	)
	if err != nil {
		if e.log != nil {
			e.log.Warn("poll prototype build failed", "applet", lead.ID, "err", err)
		}
		sub.prep = nil
		return
	}
	sub.prep = prep
}

// shard owns a partition of the poll subscriptions: the identity index
// used for hint routing, a timer min-heap of pending polls, and the
// pump/worker actors that drain it. All shard state is guarded by mu;
// the counters are atomics updated lock-free on the poll hot path and
// merged by Engine.Stats.
type shard struct {
	e     *Engine
	id    int
	alarm simtime.Alarm

	mu  sync.Mutex
	rng *stats.RNG // shard-split stream; per-subscription streams split off it
	// heap orders pending polls by due time (seq breaks ties FIFO).
	heap pollHeap
	seq  uint64
	// subs indexes the shard's subscriptions by key (the wire
	// trigger_identity), for realtime hint routing.
	subs map[string]*subscription
	// ready queues due subscriptions awaiting a free worker.
	ready     []*subscription
	readyHead int
	inflight  int  // worker actors currently running
	pumpOn    bool // a pump actor is live (invariant: heap non-empty ⇒ pumpOn)
	pumpAt    time.Time
	stopped   bool

	// ingress is the shard's bounded push-delivery queue (ingress.go),
	// nil unless Config.Push. Set once in New, before any traffic.
	ingress *ingest.Queue[pushItem]

	counters shardCounters
}

// shardCounters are the shard-local halves of Stats, bumped atomically
// so concurrent workers never contend on a lock.
type shardCounters struct {
	polls          atomic.Int64
	pollFailures   atomic.Int64
	pollsCoalesced atomic.Int64
	eventsReceived atomic.Int64
	actionsOK      atomic.Int64
	actionsFailed  atomic.Int64
	conditionSkips atomic.Int64

	// Failure classification: transport errors got no HTTP response at
	// all, HTTP errors carry a real non-200 status (httpx reports the
	// last received status on retry exhaustion).
	pollErrTransport   atomic.Int64
	pollErrHTTP        atomic.Int64
	actionErrTransport atomic.Int64
	actionErrHTTP      atomic.Int64

	// Circuit-breaker transitions and half-open probes (resilience.go).
	breakerOpens  atomic.Int64
	breakerCloses atomic.Int64
	breakerProbes atomic.Int64

	// Polls the admission controller pushed past their due time because
	// the upstream service's token bucket was empty (adaptive.go).
	pollsDeferred atomic.Int64

	// Push-path executions and the fresh events they delivered
	// (ingress.go); the push analogue of polls/eventsReceived.
	pushBatches atomic.Int64
	pushEvents  atomic.Int64
}

func newShard(e *Engine, id int, rng *stats.RNG) *shard {
	return &shard{
		e:     e,
		id:    id,
		alarm: e.clock.NewAlarm(),
		rng:   rng,
		subs:  make(map[string]*subscription),
	}
}

// shardFor maps a scheduling key (applet ID, or subscription key under
// coalescing) to its owning shard.
func (e *Engine) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// joinLocked adds ra to the subscription for key, creating and
// scheduling the subscription when ra is its first member. Caller holds
// s.mu. The RNG split label and gap-draw ID are the founding applet's,
// so with coalescing off (one applet per subscription) the poll
// schedule is draw-for-draw identical to scheduling applets directly.
func (s *shard) joinLocked(ra *runningApplet, key string) {
	sub := s.subs[key]
	if sub == nil {
		sub = &subscription{
			key:     key,
			shard:   s,
			trigger: ra.def.Trigger,
			user:    ra.def.UserID,
			rng:     s.rng.Split("applet-" + ra.def.ID),
			members: []*runningApplet{ra},
		}
		ra.sub = sub
		s.subs[key] = sub
		sub.rebuildPrepLocked(s.e)
		now := s.e.clock.Now()
		var gap time.Duration
		if ap := s.e.adaptive; ap != nil {
			// New subscriptions start presumed-cold with a spread first
			// poll; the first result (or a hint) reveals their heat.
			sub.rateAt = now
			gap = ap.initialGap(sub.rng)
		} else {
			gap = s.e.poll.NextGap(sub.leadID, sub.trigger.Service, sub.rng)
		}
		s.scheduleLocked(sub, now.Add(gap))
		return
	}
	sub.members = append(sub.members, ra)
	ra.sub = sub
}

// leaveLocked removes ra from its subscription; when ra was the last
// member the subscription itself is retired (pending poll cancelled,
// unindexed) and leaveLocked reports true so the caller can notify the
// trigger service. Caller holds s.mu.
func (s *shard) leaveLocked(ra *runningApplet) (last bool) {
	sub := ra.sub
	for i, m := range sub.members {
		if m == ra {
			copy(sub.members[i:], sub.members[i+1:])
			sub.members[len(sub.members)-1] = nil
			sub.members = sub.members[:len(sub.members)-1]
			break
		}
	}
	if len(sub.members) == 0 {
		sub.removed = true
		if sub.brState != brClosed {
			// Retiring a tripped subscription settles the open-breaker
			// gauge; nextPollDueLocked skips removed subscriptions, so
			// this is the only closing path it can take.
			sub.brState = brClosed
			s.e.breakerOpen.Add(-1)
		}
		delete(s.subs, sub.key)
		if en := sub.entry; en != nil {
			s.heap.remove(en)
			sub.entry = nil
			// Let the pump re-evaluate: if this was the last pending poll
			// it exits, releasing its clock timer so a simulation can
			// quiesce.
			s.alarm.Wake()
		}
		return true
	}
	if ra.def.ID == sub.leadID {
		sub.rebuildPrepLocked(s.e)
	}
	return false
}

// byIdentity resolves a wire trigger identity within this shard,
// returning the subscription plus a member snapshot taken under the
// lock (first member's applet ID and the member count).
func (s *shard) byIdentity(identity string) (sub *subscription, firstID string, members int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub = s.subs[identity]
	if sub == nil || len(sub.members) == 0 {
		return nil, "", 0
	}
	return sub, sub.members[0].def.ID, len(sub.members)
}

// stop marks the shard stopped and wakes the pump so it exits. Pending
// polls are abandoned; in-flight polls finish their current round.
func (s *shard) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.alarm.Wake()
}
