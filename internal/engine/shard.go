package engine

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
	"repro/internal/stats"
)

// shard owns a partition of the installed applets: their definitions,
// the identity and per-user indexes used for hint routing, a timer
// min-heap of pending polls, and the pump/worker actors that drain it.
// All shard state is guarded by mu; the counters are atomics updated
// lock-free on the poll hot path and merged by Engine.Stats.
type shard struct {
	e     *Engine
	id    int
	alarm simtime.Alarm

	mu  sync.Mutex
	rng *stats.RNG // shard-split stream; per-applet streams split off it
	// heap orders pending polls by due time (seq breaks ties FIFO).
	heap pollHeap
	seq  uint64
	// applets, identities and byUser index the shard's population by
	// applet ID, trigger identity, and owning user.
	applets    map[string]*runningApplet
	identities map[string]*runningApplet
	byUser     map[string]map[string]*runningApplet
	// ready queues due applets awaiting a free worker.
	ready     []*runningApplet
	readyHead int
	inflight  int  // worker actors currently running
	pumpOn    bool // a pump actor is live (invariant: heap non-empty ⇒ pumpOn)
	pumpAt    time.Time
	stopped   bool

	counters shardCounters
}

// shardCounters are the shard-local halves of Stats, bumped atomically
// so concurrent workers never contend on a lock.
type shardCounters struct {
	polls          atomic.Int64
	pollFailures   atomic.Int64
	eventsReceived atomic.Int64
	actionsOK      atomic.Int64
	actionsFailed  atomic.Int64
	conditionSkips atomic.Int64
}

func newShard(e *Engine, id int, rng *stats.RNG) *shard {
	return &shard{
		e:          e,
		id:         id,
		alarm:      e.clock.NewAlarm(),
		rng:        rng,
		applets:    make(map[string]*runningApplet),
		identities: make(map[string]*runningApplet),
		byUser:     make(map[string]map[string]*runningApplet),
	}
}

// shardFor maps an applet ID to its owning shard.
func (e *Engine) shardFor(appletID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(appletID))
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// installLocked registers ra in the shard indexes and schedules its
// first poll one freshly drawn gap from now. Caller holds s.mu.
func (s *shard) installLocked(ra *runningApplet) {
	ra.shard = s
	ra.rng = s.rng.Split("applet-" + ra.def.ID)
	s.applets[ra.def.ID] = ra
	s.identities[ra.identity] = ra
	u := s.byUser[ra.def.UserID]
	if u == nil {
		u = make(map[string]*runningApplet)
		s.byUser[ra.def.UserID] = u
	}
	u[ra.def.ID] = ra
	gap := s.e.poll.NextGap(ra.def.ID, ra.def.Trigger.Service, ra.rng)
	s.scheduleLocked(ra, s.e.clock.Now().Add(gap))
}

// removeLocked unindexes ra and cancels its pending poll. Caller holds
// s.mu; returns false when the ID is not installed here.
func (s *shard) removeLocked(id string) *runningApplet {
	ra := s.applets[id]
	if ra == nil {
		return nil
	}
	delete(s.applets, id)
	delete(s.identities, ra.identity)
	if u := s.byUser[ra.def.UserID]; u != nil {
		delete(u, id)
		if len(u) == 0 {
			delete(s.byUser, ra.def.UserID)
		}
	}
	ra.removed = true
	if en := ra.entry; en != nil {
		s.heap.remove(en)
		ra.entry = nil
		// Let the pump re-evaluate: if this was the last pending poll it
		// exits, releasing its clock timer so a simulation can quiesce.
		s.alarm.Wake()
	}
	return ra
}

// userApplets appends the shard's applets owned by userID to dst.
func (s *shard) userApplets(dst []*runningApplet, userID string) []*runningApplet {
	s.mu.Lock()
	for _, ra := range s.byUser[userID] {
		dst = append(dst, ra)
	}
	s.mu.Unlock()
	return dst
}

// byIdentity resolves a trigger identity within this shard.
func (s *shard) byIdentity(identity string) *runningApplet {
	s.mu.Lock()
	ra := s.identities[identity]
	s.mu.Unlock()
	return ra
}

// stop marks the shard stopped and wakes the pump so it exits. Pending
// polls are abandoned; in-flight polls finish their current round.
func (s *shard) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.alarm.Wake()
}
