package engine

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
)

// postHints POSTs a realtime notification straight at the engine's
// handler, bypassing the simulated network (hooks in tests sometimes
// need to fire a hint at an exact instant).
func (r *rig) postHints(t *testing.T, body string) int {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/notifications", strings.NewReader(body))
	w := httptest.NewRecorder()
	r.engine.Handler().ServeHTTP(w, req)
	return w.Code
}

func TestHintUnmatchedIdentityStillCounted(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: time.Hour}, map[string]bool{"testsvc": true})
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		if code := r.postHints(t, `{"data":[{"trigger_identity":"no-such-identity"},{"user_id":"nobody"}]}`); code != 200 {
			t.Fatalf("notification rejected: %d", code)
		}
		r.engine.Stop()
	})
	hints := r.tracesOf(TraceHintReceived)
	if len(hints) != 2 {
		t.Fatalf("traced %d hints, want 2 (unmatched hints must still be counted)", len(hints))
	}
	for _, ev := range hints {
		if ev.N != 0 || ev.AppletID != "" {
			t.Errorf("unmatched hint traced as matched: N=%d applet=%q", ev.N, ev.AppletID)
		}
	}
	if got := r.engine.Stats().HintsReceived; got != 2 {
		t.Errorf("HintsReceived = %d, want 2", got)
	}
}

func TestHintCountedOncePerNotificationEntry(t *testing.T) {
	// One user hint fanning out to many applets is one hint, not many.
	r := newRig(t, FixedInterval{Interval: time.Hour}, map[string]bool{"testsvc": true})
	r.clock.Run(func() {
		for _, id := range []string{"a1", "a2", "a3"} {
			r.engine.Install(r.applet(id))
		}
		if code := r.postHints(t, `{"data":[{"user_id":"u1"}]}`); code != 200 {
			t.Fatalf("notification rejected: %d", code)
		}
		r.engine.Stop()
	})
	hints := r.tracesOf(TraceHintReceived)
	if len(hints) != 1 {
		t.Fatalf("traced %d hints, want exactly 1", len(hints))
	}
	if hints[0].N != 3 {
		t.Errorf("hint matched N=%d applets, want 3", hints[0].N)
	}
	if got := r.engine.Stats().HintsReceived; got != 1 {
		t.Errorf("HintsReceived = %d, want 1", got)
	}
}

func TestHintForAppletRemovedMidFlight(t *testing.T) {
	// A hint whose applet is removed between notification and the
	// delayed poke must neither panic nor provoke a poll.
	r := newRig(t, FixedInterval{Interval: time.Hour}, map[string]bool{"testsvc": true})
	a := r.applet("a1")
	identity := a.TriggerIdentity()
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(time.Second) // first poll done
		polls := len(r.tracesOf(TracePollSent))

		// Hint lands, then the applet is removed before the realtime
		// delay elapses and the poke fires.
		if code := r.postHints(t, `{"data":[{"trigger_identity":"`+identity+`"}]}`); code != 200 {
			t.Fatalf("notification rejected: %d", code)
		}
		r.engine.Remove("a1")
		r.clock.Sleep(time.Minute)
		if after := len(r.tracesOf(TracePollSent)); after != polls {
			t.Errorf("removed applet polled by stale poke: %d → %d", polls, after)
		}

		// And the reverse race: removal first, hint after. The hint is
		// still acknowledged and counted, with no target.
		if code := r.postHints(t, `{"data":[{"trigger_identity":"`+identity+`"}]}`); code != 200 {
			t.Fatalf("post-removal notification rejected: %d", code)
		}
		r.clock.Sleep(time.Minute)
		if after := len(r.tracesOf(TracePollSent)); after != polls {
			t.Errorf("hint for removed applet provoked a poll: %d → %d", polls, after)
		}
		r.engine.Stop()
	})
	hints := r.tracesOf(TraceHintReceived)
	if len(hints) != 2 {
		t.Fatalf("traced %d hints, want 2", len(hints))
	}
	if hints[0].N != 1 {
		t.Errorf("pre-removal hint N=%d, want 1", hints[0].N)
	}
	if hints[1].N != 0 {
		t.Errorf("post-removal hint N=%d, want 0", hints[1].N)
	}
	if got := r.engine.Stats().HintsReceived; got != 2 {
		t.Errorf("HintsReceived = %d, want 2", got)
	}
}

func TestHintDroppedWhileAppletMidPoll(t *testing.T) {
	// A poke landing while the applet's poll is in flight is dropped —
	// it must not queue a second immediate poll (old stopper semantics).
	r := newRig(t, FixedInterval{Interval: time.Hour}, map[string]bool{"testsvc": true})
	// Stretch the network so the first poll's round trip (~10s) outlasts
	// the realtime delay (1.5s): the poke then lands mid-poll.
	r.net.SetDefaultLink(simnet.Link{Latency: stats.Constant(5)})
	a := r.applet("a1")
	identity := a.TriggerIdentity()
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(10 * time.Millisecond)
		r.postHints(t, `{"data":[{"trigger_identity":"`+identity+`"}]}`)
		r.clock.Sleep(30 * time.Minute)
		r.engine.Stop()
	})
	// Exactly one poll: the in-flight one. The poke was dropped and the
	// hour-long gap that follows is untouched.
	if polls := len(r.tracesOf(TracePollSent)); polls != 1 {
		t.Errorf("polls = %d, want 1 (mid-poll poke must be dropped)", polls)
	}
}
