package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// eventDoer answers every trigger poll with one fresh event whose
// timestamp lags the current (simulated) time by lag, and every action
// with a bare 200. Unlike stubDoer it produces executions — and
// therefore spans — on every poll round.
type eventDoer struct {
	clock simtime.Clock
	lag   time.Duration
	seq   atomic.Uint64
}

func (d *eventDoer) Do(req *http.Request) (*http.Response, error) {
	body := `{}`
	if strings.HasPrefix(req.URL.Path, "/ifttt/v1/triggers/") {
		id := d.seq.Add(1)
		ts := d.clock.Now().Add(-d.lag).Unix()
		body = fmt.Sprintf(`{"data":[{"meta":{"id":"e%d","timestamp":%d}}]}`, id, ts)
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(body)),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

// sloApplet builds an applet on a shared trigger service with a unique
// trigger identity (distinct field) so subscriptions stay per-applet.
func sloApplet(i int, service string) Applet {
	id := fmt.Sprintf("slo%03d", i)
	return Applet{
		ID:     id,
		UserID: "u1",
		Trigger: ServiceRef{
			Service: service, BaseURL: "http://svc.sim", Slug: "fired",
			Fields: map[string]string{"n": id},
		},
		Action: ServiceRef{
			Service: service, BaseURL: "http://svc.sim", Slug: "act",
		},
	}
}

// TestEngineSLOChaosBlackout is the SLO tier's acceptance chaos run: a
// healthy engine executing continuously, then a five-minute blackout of
// the ACTION endpoint (polls keep succeeding, deliveries fail), then
// recovery. Deterministic under simtime, it must drive the burn-rate
// tracker through ok -> warn -> page on the way down and back to ok on
// the way up, with the page preceded by a warn and the trace stream
// carrying the matching slo_* events.
func TestEngineSLOChaosBlackout(t *testing.T) {
	const (
		pollEvery     = 5 * time.Second
		blackoutStart = 300 * time.Second
		blackoutEnd   = 600 * time.Second
	)
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(17)
	doer := &eventDoer{clock: clock, lag: time.Second}

	inj := faults.New(clock, rng.Split("faults"))
	inj.AddRule(faults.Rule{
		// Blackout only action delivery: polls still find events, so
		// every execution during the window yields a Failed span. (A
		// trigger-path blackout would be invisible to the SLO tracker —
		// failed polls produce no executions, hence no spans.)
		PathPrefix: "/ifttt/v1/actions",
		Blackouts:  []faults.Window{{Start: blackoutStart, End: blackoutEnd}},
	})

	var mu sync.Mutex
	var transitions []slo.Transition
	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          inj.Wrap(doer),
		Poll:          FixedInterval{Interval: pollEvery},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		SLO: &slo.Config{
			Objective:     slo.Objective{Threshold: time.Minute, Ratio: 0.95},
			FastWindow:    time.Minute,
			SlowWindow:    5 * time.Minute,
			PageBurn:      4,
			WarnBurn:      1,
			ClearFraction: 0.5,
			OnTransition: func(tr slo.Transition) {
				mu.Lock()
				transitions = append(transitions, tr)
				mu.Unlock()
			},
		},
	})

	clock.Run(func() {
		for i := 0; i < 4; i++ {
			if err := eng.Install(sloApplet(i, "chaossvc")); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		clock.Sleep(1200 * time.Second)
		eng.Stop()
	})

	mu.Lock()
	defer mu.Unlock()
	var global []slo.Transition
	for _, tr := range transitions {
		if tr.Service == "" {
			global = append(global, tr)
		}
	}
	if len(global) < 3 {
		t.Fatalf("global transitions = %d (%+v), want >= 3 (ok->warn->page->...->ok)", len(global), global)
	}
	if global[0].From != slo.StateOK || global[0].To != slo.StateWarn {
		t.Errorf("first transition = %s->%s, want ok->warn", global[0].From, global[0].To)
	}
	paged := false
	for _, tr := range global {
		if tr.To == slo.StatePage {
			paged = true
		}
	}
	if !paged {
		t.Errorf("blackout never paged: %+v", global)
	}
	if last := global[len(global)-1]; last.To != slo.StateOK {
		t.Errorf("last transition = %s->%s, want ->ok (recovery)", last.From, last.To)
	}
	// The per-service series for chaossvc followed the same arc.
	sawSvcPage := false
	for _, tr := range transitions {
		if tr.Service == "chaossvc" && tr.To == slo.StatePage {
			sawSvcPage = true
		}
	}
	if !sawSvcPage {
		t.Error("per-service series for chaossvc never paged")
	}
	// And the tracker converged back to ok.
	if st := eng.slo.State(); st != slo.StateOK {
		t.Errorf("final tracker state = %v, want ok", st)
	}
}

// TestEngineSLOTraceEvents reruns a shortened blackout and checks the
// alert transitions surface on the engine's own trace stream (the
// operational audit trail) with the service attached.
func TestEngineSLOTraceEvents(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(19)
	doer := &eventDoer{clock: clock, lag: time.Second}
	inj := faults.New(clock, rng.Split("faults"))
	inj.AddRule(faults.Rule{
		PathPrefix: "/ifttt/v1/actions",
		Blackouts:  []faults.Window{{Start: 60 * time.Second, End: 300 * time.Second}},
	})

	var mu sync.Mutex
	kinds := map[TraceKind]int{}
	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          inj.Wrap(doer),
		Poll:          FixedInterval{Interval: 5 * time.Second},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		SLO: &slo.Config{
			Objective:     slo.Objective{Threshold: time.Minute, Ratio: 0.95},
			FastWindow:    time.Minute,
			SlowWindow:    2 * time.Minute,
			PageBurn:      4,
			WarnBurn:      1,
			ClearFraction: 0.5,
		},
		Trace: func(ev TraceEvent) {
			switch ev.Kind {
			case TraceSLOWarn, TraceSLOPage, TraceSLOClear:
				mu.Lock()
				kinds[ev.Kind]++
				if ev.Service != "" && ev.Service != "chaossvc" {
					t.Errorf("slo trace for unexpected service %q", ev.Service)
				}
				mu.Unlock()
			}
		},
	})
	clock.Run(func() {
		for i := 0; i < 4; i++ {
			if err := eng.Install(sloApplet(i, "chaossvc")); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		clock.Sleep(600 * time.Second)
		eng.Stop()
	})

	mu.Lock()
	defer mu.Unlock()
	if kinds[TraceSLOWarn] == 0 || kinds[TraceSLOPage] == 0 || kinds[TraceSLOClear] == 0 {
		t.Errorf("slo trace kinds = %v, want warn, page and clear all present", kinds)
	}
}

// TestEngineExemplarResolution checks the exemplar contract end to end:
// a backlogged service (every event ~10 minutes old) makes every
// execution breach the objective, so the T2A histogram's exemplars on
// /metrics must name exec IDs that resolve in /debug/slowest, and
// /debug/exemplars and /debug/slo must reflect the same executions.
func TestEngineExemplarResolution(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(23)
	doer := &eventDoer{clock: clock, lag: 600 * time.Second}
	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          doer,
		Poll:          FixedInterval{Interval: 5 * time.Second},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		Metrics:       obs.NewRegistry(),
		SLO: &slo.Config{
			Objective: slo.Objective{Threshold: time.Minute, Ratio: 0.95},
		},
	})
	clock.Run(func() {
		for i := 0; i < 2; i++ {
			if err := eng.Install(sloApplet(i, "lagsvc")); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		clock.Sleep(60 * time.Second)
		eng.Stop()
	})
	h := eng.Handler()

	// 1. /metrics carries OpenMetrics exemplars on the T2A buckets.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	exRe := regexp.MustCompile(`ifttt_t2a_seconds_bucket\{le="[^"]+"\} \d+ # \{trace_id="(\d+)"\} [0-9.]+ [0-9.]+`)
	matches := exRe.FindAllStringSubmatch(body, -1)
	if len(matches) == 0 {
		t.Fatalf("/metrics has no T2A exemplars:\n%s", body)
	}

	// 2. Every exemplar trace ID resolves to a span in /debug/slowest.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowest", nil))
	var views []slo.SpanView
	if err := json.Unmarshal(rec.Body.Bytes(), &views); err != nil {
		t.Fatalf("/debug/slowest: %v in %s", err, rec.Body.String())
	}
	if len(views) == 0 {
		t.Fatal("/debug/slowest retained no spans despite 100% breach rate")
	}
	retained := map[uint64]bool{}
	for _, v := range views {
		retained[v.ExecID] = true
		if v.T2AS < 60 {
			t.Errorf("retained span exec %d has t2a %gs, below the 60s threshold", v.ExecID, v.T2AS)
		}
	}
	for _, m := range matches {
		id, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatalf("exemplar trace_id %q not an exec ID: %v", m[1], err)
		}
		if !retained[id] {
			t.Errorf("exemplar trace_id %d not resolvable in /debug/slowest (retained: %v)", id, retained)
		}
	}

	// 3. /debug/exemplars serves the same buckets as JSON.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/exemplars", nil))
	exBody := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(exBody, "ifttt_t2a_seconds") {
		t.Errorf("/debug/exemplars: %d %s", rec.Code, exBody)
	}

	// 4. /debug/slo reports the breaching service in page state.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var st slo.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/debug/slo: %v", err)
	}
	if len(st.Services) != 1 || st.Services[0].Service != "lagsvc" || st.Services[0].State != "page" {
		t.Errorf("/debug/slo services = %+v, want lagsvc paging", st.Services)
	}
}

// TestAdmissionStalled unit-tests the poll-budget stall detector behind
// the readiness probe.
func TestAdmissionStalled(t *testing.T) {
	a := newAdmission(1, 1)
	t0 := time.Unix(2000, 0)
	window := time.Minute

	if ok, _ := a.stalled(t0, window); ok {
		t.Error("fresh admission reports stalled")
	}
	// First reserve grants (full bucket); still not stalled.
	if d := a.reserve("svc", t0); d != 0 {
		t.Fatalf("first reserve deferred by %v", d)
	}
	if ok, _ := a.stalled(t0, window); ok {
		t.Error("granting admission reports stalled")
	}
	// Burn the bucket: continuous deferrals from t0+1s.
	now := t0.Add(time.Second)
	for i := 0; i < 100; i++ {
		a.reserve("svc", now)
	}
	// Streak too short.
	if ok, _ := a.stalled(now, window); ok {
		t.Error("stalled after instantaneous deferrals, want streak >= window")
	}
	// Keep deferring past the window.
	now = now.Add(2 * window)
	a.reserve("svc", now) // tokens refilled? qps=1, 2min => granted
	// A grant resets the streak.
	if ok, _ := a.stalled(now.Add(2*window), window); ok {
		t.Error("stalled after a grant reset the streak")
	}
	// Rebuild an unbroken streak spanning the window.
	for i := 0; i <= 120; i++ {
		a.reserve("svc", now.Add(time.Duration(i)*time.Second))
	}
	end := now.Add(120 * time.Second)
	ok, streak := a.stalled(end, window)
	if !ok || streak < window {
		t.Errorf("stalled = %v streak %v, want true with streak >= %v", ok, streak, window)
	}
	// A stale streak (no recent deferrals) is not a current stall.
	if ok, _ := a.stalled(end.Add(3*window), window); ok {
		t.Error("stalled long after deferrals stopped, want false")
	}
}

// TestReadyzBreakerOutage drives a total outage of the only partner
// service into open breakers and checks /readyz flips to 503 naming the
// service, while a healthy engine stays 200.
func TestReadyzBreakerOutage(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(29)
	eng := New(Config{
		Clock:         clock,
		RNG:           rng.Split("engine"),
		Doer:          failDoer{},
		Poll:          FixedInterval{Interval: 5 * time.Second},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		Resilience: ResilienceConfig{
			BackoffBase:      10 * time.Second,
			BackoffMax:       time.Minute,
			BreakerThreshold: 1,
			ProbeInterval:    10 * time.Minute,
		},
	})
	clock.Run(func() {
		if err := eng.Install(sloApplet(0, "darksvc")); err != nil {
			t.Fatalf("install: %v", err)
		}
		clock.Sleep(60 * time.Second)

		rec := httptest.NewRecorder()
		eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("/readyz during total outage: %d %s, want 503", rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "darksvc") {
			t.Errorf("/readyz reasons omit the dark service: %s", rec.Body.String())
		}
		eng.Stop()
	})

	// Healthy engine: ready.
	clock2 := simtime.NewSimDefault()
	healthy := New(Config{
		Clock:         clock2,
		RNG:           stats.NewRNG(31),
		Doer:          stubDoer{},
		Poll:          FixedInterval{Interval: 5 * time.Second},
		DispatchDelay: -1,
	})
	clock2.Run(func() {
		if err := healthy.Install(sloApplet(0, "oksvc")); err != nil {
			t.Fatalf("install: %v", err)
		}
		clock2.Sleep(20 * time.Second)
		rec := httptest.NewRecorder()
		healthy.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok"`) {
			t.Errorf("/readyz healthy: %d %s, want 200 ok", rec.Code, rec.Body.String())
		}
		healthy.Stop()
	})
}

// failDoer fails every request with a transport error.
type failDoer struct{}

func (failDoer) Do(req *http.Request) (*http.Response, error) {
	return nil, fmt.Errorf("%s %s: connection refused", req.Method, req.URL)
}
