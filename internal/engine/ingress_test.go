package engine

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// newPushRig is newRigCfg with the push tier on both ends: the engine
// mounts the push ingress and the partner service POSTs every buffered
// event to it on Publish (while still serving polls, so both paths see
// the same event IDs).
func newPushRig(t *testing.T, poll PollPolicy, mod func(*Config)) *rig {
	t.Helper()
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(11)
	net := simnet.New(clock, rng.Split("net"))
	net.SetDefaultLink(simnet.Link{Latency: stats.Constant(0.02)})

	svc := service.New(service.Config{
		Name: "testsvc", Clock: clock, ServiceKey: "k",
		Push: &service.PushConfig{
			URL:        "http://engine.sim" + proto.PushPath,
			Client:     httpx.NewClient(net.Client("svc.sim"), clock, 0),
			ServiceKey: "k",
		},
	})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "fired"})
	svc.RegisterAction(service.ActionSpec{
		Slug:    "act",
		Execute: func(map[string]string, proto.UserInfo) error { return nil },
	})
	net.AddHost("svc.sim", svc.Handler())

	r := &rig{clock: clock, net: net, svc: svc}
	cfg := Config{
		Clock: clock,
		RNG:   rng.Split("engine"),
		Doer:  net.Client("engine.sim"),
		Poll:  poll,
		Push:  true,
		Trace: func(ev TraceEvent) {
			r.mu.Lock()
			r.traces = append(r.traces, ev)
			r.mu.Unlock()
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	r.engine = New(cfg)
	net.AddHost("engine.sim", r.engine.Handler())
	return r
}

// The push copy arrives seconds before any poll; the polls that follow
// re-serve the same buffered event. Exactly one action must run.
func TestPushThenPollExecutesOnce(t *testing.T) {
	r := newPushRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		// Let the first poll create the service-side subscription.
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		r.clock.Sleep(60 * time.Second)
		r.engine.Stop()
	})

	if acked := r.tracesOf(TraceActionAcked); len(acked) != 1 {
		t.Fatalf("event executed %d times across push+poll, want exactly once", len(acked))
	}
	st := r.engine.Stats()
	if st.PushEvents != 1 {
		t.Errorf("push delivered %d fresh events, want 1", st.PushEvents)
	}
	// The push beat every poll, so the poll path saw nothing fresh.
	if st.EventsReceived != 0 {
		t.Errorf("poll path received %d fresh events, want 0 (push won)", st.EventsReceived)
	}
	if polls := r.tracesOf(TracePollSent); len(polls) < 5 {
		t.Errorf("polling stalled: %d polls", len(polls))
	}
	if ss := r.svc.Stats(); ss.PushEventsAccepted != 1 {
		t.Errorf("service push accounting: accepted %d, want 1", ss.PushEventsAccepted)
	}
}

// The poll path executes the event first; a push replay of the same
// event ID afterwards must dedup away without a second execution.
func TestPollThenPushDeduplicates(t *testing.T) {
	r := newRigCfg(t, FixedInterval{Interval: 5 * time.Second}, nil, func(cfg *Config) {
		cfg.Push = true
	})
	a := r.applet("a1")
	var resp proto.PushResponse
	var status int
	var postErr error
	r.clock.Run(func() {
		r.engine.Install(a)
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		// The poll path executes the event...
		r.clock.Sleep(20 * time.Second)
		// ...then a late push replays the same event ID ("<name>-ev-<seq>",
		// the service's stamping scheme).
		client := httpx.NewClient(r.net.Client("pusher.sim"), r.clock, 0)
		status, postErr = client.DoJSON("POST", "http://engine.sim"+proto.PushPath,
			proto.PushBatch{Data: []proto.PushDelivery{{
				TriggerIdentity: a.TriggerIdentity(),
				Events: []proto.TriggerEvent{{
					Ingredients: map[string]string{"n": "1"},
					Meta:        proto.EventMeta{ID: "testsvc-ev-1", Timestamp: r.clock.Now().Unix()},
				}},
			}}}, &resp)
		r.clock.Sleep(10 * time.Second)
		r.engine.Stop()
	})

	if postErr != nil || status != http.StatusOK {
		t.Fatalf("push POST: status %d err %v", status, postErr)
	}
	if resp.Accepted != 1 || resp.Rejected != 0 || resp.Unmatched != 0 {
		t.Fatalf("push response %+v, want 1 accepted", resp)
	}
	if acked := r.tracesOf(TraceActionAcked); len(acked) != 1 {
		t.Fatalf("event executed %d times across poll+push, want exactly once", len(acked))
	}
	if st := r.engine.Stats(); st.PushEvents != 0 {
		t.Errorf("push dispatched %d fresh events, want 0 (all deduped)", st.PushEvents)
	}
}

// With coalescing, one pushed event fans out to every member of the
// shared subscription exactly once — and later polls add nothing.
func TestPushCoalescedExecutesEachMemberOnce(t *testing.T) {
	r := newPushRig(t, FixedInterval{Interval: 5 * time.Second}, func(cfg *Config) {
		cfg.Coalesce = true
	})
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.engine.Install(r.applet("a2"))
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		r.clock.Sleep(60 * time.Second)
		r.engine.Stop()
	})

	if acked := r.tracesOf(TraceActionAcked); len(acked) != 2 {
		t.Fatalf("coalesced push executed %d actions, want exactly one per member (2)", len(acked))
	}
	st := r.engine.Stats()
	if st.Subscriptions != 1 {
		t.Fatalf("subscriptions = %d, want 1 (coalesced)", st.Subscriptions)
	}
	if st.PushEvents != 2 {
		t.Errorf("push fresh events = %d, want 2 (one per member ring)", st.PushEvents)
	}
	if st.EventsReceived != 0 {
		t.Errorf("poll path received %d fresh events, want 0", st.EventsReceived)
	}
}

// Two deliveries for the same subscription in one batch merge into a
// single dispatch execution (adaptive micro-batching).
func TestPushMicroBatchMergesSameSubscription(t *testing.T) {
	r := newRigCfg(t, FixedInterval{Interval: time.Hour}, nil, func(cfg *Config) {
		cfg.Push = true
	})
	a := r.applet("a1")
	var resp proto.PushResponse
	r.clock.Run(func() {
		r.engine.Install(a)
		client := httpx.NewClient(r.net.Client("pusher.sim"), r.clock, 0)
		delivery := func(id string) proto.PushDelivery {
			return proto.PushDelivery{
				TriggerIdentity: a.TriggerIdentity(),
				Events: []proto.TriggerEvent{{
					Ingredients: map[string]string{"n": id},
					Meta:        proto.EventMeta{ID: id, Timestamp: r.clock.Now().Unix()},
				}},
			}
		}
		client.DoJSON("POST", "http://engine.sim"+proto.PushPath,
			proto.PushBatch{Data: []proto.PushDelivery{delivery("e1"), delivery("e2")}}, &resp)
		r.clock.Sleep(10 * time.Second)
		r.engine.Stop()
	})

	if resp.Accepted != 2 {
		t.Fatalf("push response %+v, want 2 accepted", resp)
	}
	st := r.engine.Stats()
	if st.PushBatches != 1 {
		t.Errorf("push dispatch executions = %d, want 1 (merged)", st.PushBatches)
	}
	if st.PushEvents != 2 || st.ActionsOK != 2 {
		t.Errorf("fresh=%d actions=%d, want 2 and 2", st.PushEvents, st.ActionsOK)
	}
}

// The bounded-ingress invariant under a 10x overload burst: queued
// depth never exceeds the configured bound, every event is accounted
// (accepted+rejected+unmatched), accepted events execute exactly once,
// polling keeps running, and the queue drains afterwards. Runs under
// -race via the standard test suite.
func TestIngressBackpressureSoak(t *testing.T) {
	const (
		bound     = 32
		producers = 8
		perProd   = 40 // 10x the bound in total
	)
	r := newRigCfg(t, FixedInterval{Interval: 5 * time.Second}, nil, func(cfg *Config) {
		cfg.Push = true
		cfg.IngressQueue = bound
		cfg.IngressBatch = 4
		// A slow dispatch wedges the consumer so the burst piles up.
		cfg.DispatchDelay = 500 * time.Millisecond
	})
	a := r.applet("a1")

	var maxDepth atomic.Int64
	var sampling atomic.Bool
	sampling.Store(true)
	r.clock.Run(func() {
		r.engine.Install(a)
		// Depth sampler: polls the gauge every 50ms for the whole soak.
		r.clock.Go(func() {
			for sampling.Load() {
				if d := r.engine.Stats().IngressDepth; d > maxDepth.Load() {
					maxDepth.Store(d)
				}
				r.clock.Sleep(50 * time.Millisecond)
			}
		})
		for p := 0; p < producers; p++ {
			p := p
			client := httpx.NewClient(r.net.Client(fmt.Sprintf("pusher-%d.sim", p)), r.clock, 0)
			r.clock.Go(func() {
				for j := 0; j < perProd; j++ {
					id := fmt.Sprintf("burst-%d-%d", p, j)
					client.DoJSON("POST", "http://engine.sim"+proto.PushPath,
						proto.PushBatch{Data: []proto.PushDelivery{{
							TriggerIdentity: a.TriggerIdentity(),
							Events: []proto.TriggerEvent{{
								Ingredients: map[string]string{"n": id},
								Meta:        proto.EventMeta{ID: id, Timestamp: r.clock.Now().Unix()},
							}},
						}}}, nil)
				}
			})
		}
		// Generously past the drain: ≤320 accepted × 0.5s dispatch delay.
		r.clock.Sleep(6 * time.Minute)
		sampling.Store(false)
		r.clock.Sleep(time.Second)
		r.engine.Stop()
	})

	st := r.engine.Stats()
	total := st.IngressAccepted + st.IngressRejected + st.IngressUnmatched
	if want := int64(producers * perProd); total != want {
		t.Fatalf("ingress accounting: accepted %d + rejected %d + unmatched %d = %d, want %d",
			st.IngressAccepted, st.IngressRejected, st.IngressUnmatched, total, want)
	}
	if st.IngressUnmatched != 0 {
		t.Errorf("unmatched = %d, want 0", st.IngressUnmatched)
	}
	if st.IngressRejected == 0 {
		t.Errorf("burst never tripped backpressure (rejected = 0); bound untested")
	}
	if got := maxDepth.Load(); got > bound {
		t.Errorf("ingress depth reached %d, bound is %d", got, bound)
	}
	if st.ActionsOK != st.IngressAccepted {
		t.Errorf("accepted %d events but executed %d actions, want exactly once each",
			st.IngressAccepted, st.ActionsOK)
	}
	if st.Polls < 5 {
		t.Errorf("polling starved during the burst: %d polls", st.Polls)
	}
	if st.IngressDepth != 0 {
		t.Errorf("queue did not drain: depth %d", st.IngressDepth)
	}
}
