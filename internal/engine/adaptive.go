// Adaptive polling: the engine's first closed feedback loop, promoting
// the §6 "poll smartly" proposal from an offline ablation
// (SmartPolicy with a hand-picked hot set) to a live subsystem that
// *measures* heat. Two layers compose:
//
//   - Per-subscription cadence. Every subscription keeps an EWMA of its
//     observed event rate, updated on each poll result (and spiked by
//     honoured realtime hints, so push-assisted identities stay hot
//     even when hints deliver the events before a scheduled poll
//     would). The cadence is TargetEventsPerPoll/rate clamped into
//     [FastFloor, SlowCeiling] and jittered, so hot subscriptions
//     converge to the fast floor, cold ones decay to the slow ceiling,
//     and neither herds on simtime tick boundaries. With the paper's
//     Zipf install skew (Fig 3: the top 1% of applets earn 83% of the
//     adds) the hot set is tiny, so most of a fixed poll budget shifts
//     to the subscriptions that carry the traffic — exactly the uneven
//     spend §6 argues for.
//
//   - Global admission. Adaptive cadence alone is open-loop on total
//     upstream load: if many subscriptions go hot at once, demand can
//     exceed what partner services were provisioned for. The admission
//     controller bounds it with one token bucket per upstream service,
//     refilled at PollBudgetQPS. Reservation semantics (tokens may go
//     negative) mean an empty bucket *defers* a poll to the exact
//     instant its token accrues rather than dropping it or letting
//     deferred polls herd on the next refill: each deferral reserves a
//     distinct future slot, so a saturated service is polled at
//     precisely the configured QPS. Deferrals are counted and visible
//     in metrics (ifttt_engine_polls_deferred_total).
//
// Resilience interplay: a subscription whose circuit breaker is open
// consumes no budget — its half-open probes bypass admission, so a
// blacked-out service's budget is not burned on an endpoint presumed
// dead, and recovery probes are never starved by healthy traffic.
//
// The two layers are independent: adaptive cadence without a budget is
// pure smart polling, a budget without adaptive cadence rate-limits any
// policy (and self-staggers fixed-interval herds), and together the
// bucket shapes greedy adaptive demand to the configured ceiling.
package engine

import (
	"math"
	"sync"
	"time"

	"repro/internal/stats"
)

// AdaptiveConfig tunes per-subscription adaptive poll cadence
// (Config.Adaptive). The zero value of each field selects the default
// below.
type AdaptiveConfig struct {
	// HalfLife is the EWMA memory: an idle subscription's rate estimate
	// halves per half-life elapsed. Default DefaultEWMAHalfLife.
	HalfLife time.Duration
	// FastFloor is the shortest cadence a hot subscription can reach.
	// Default DefaultFastFloor.
	FastFloor time.Duration
	// SlowCeiling is the longest cadence a cold subscription decays to.
	// Default DefaultSlowCeiling.
	SlowCeiling time.Duration
	// TargetEventsPerPoll sets the operating point: the next gap is the
	// time the EWMA predicts this many events take to accrue (then
	// clamped). Default 1.
	TargetEventsPerPoll float64
	// HintBoost is the rate (events/sec) an honoured realtime hint
	// spikes the EWMA to. Zero means enough to pin the cadence at
	// FastFloor; negative disables hint spiking.
	HintBoost float64
	// JitterFrac spreads each gap uniformly into [1-f, 1+f)× nominal so
	// subscriptions with equal rates do not poll in lockstep. Zero
	// means DefaultAdaptiveJitter; negative disables jitter.
	JitterFrac float64
}

// Adaptive cadence defaults. The floor is well under the paper's
// 58-second 25th-percentile polling gap (Fig 4); the ceiling matches
// the 15-minute worst case the paper measured, so a cold subscription
// costs no more than production IFTTT's slowest observed cadence.
const (
	DefaultEWMAHalfLife   = 5 * time.Minute
	DefaultFastFloor      = 10 * time.Second
	DefaultSlowCeiling    = 15 * time.Minute
	DefaultAdaptiveJitter = 0.1
)

// adaptiveParams is AdaptiveConfig with defaults resolved, immutable
// after New.
type adaptiveParams struct {
	halfLife time.Duration
	fast     time.Duration
	slow     time.Duration
	target   float64
	boost    float64 // hint spike rate; 0 = disabled
	jitter   float64
}

func resolveAdaptive(cfg *AdaptiveConfig) *adaptiveParams {
	if cfg == nil {
		return nil
	}
	p := &adaptiveParams{
		halfLife: cfg.HalfLife,
		fast:     cfg.FastFloor,
		slow:     cfg.SlowCeiling,
		target:   cfg.TargetEventsPerPoll,
		jitter:   cfg.JitterFrac,
	}
	if p.halfLife <= 0 {
		p.halfLife = DefaultEWMAHalfLife
	}
	if p.fast <= 0 {
		p.fast = DefaultFastFloor
	}
	if p.slow <= 0 {
		p.slow = DefaultSlowCeiling
	}
	if p.slow < p.fast {
		p.slow = p.fast
	}
	if p.target <= 0 {
		p.target = 1
	}
	switch {
	case cfg.HintBoost > 0:
		p.boost = cfg.HintBoost
	case cfg.HintBoost == 0:
		// Default spike: the rate at which the gap mapping bottoms out
		// at the fast floor, so a hinted subscription polls as fast as
		// the engine allows until the estimate decays.
		p.boost = p.target / p.fast.Seconds()
	}
	if p.jitter == 0 {
		p.jitter = DefaultAdaptiveJitter
	}
	if p.jitter < 0 {
		p.jitter = 0
	}
	return p
}

// ewmaRate folds one observation — n events over the dt since the
// previous update — into a time-aware exponential moving average of the
// event rate (events/sec). The decay weight is exp(-dt·ln2/halfLife),
// so the estimate of a subscription that stops producing events halves
// per half-life of silence regardless of how irregular the poll
// spacing is.
func ewmaRate(rate float64, n int, dt, halfLife time.Duration) float64 {
	if dt <= 0 {
		return rate
	}
	s := dt.Seconds()
	w := math.Exp(-s * math.Ln2 / halfLife.Seconds())
	return w*rate + (1-w)*float64(n)/s
}

// gap maps an event-rate estimate to the nominal cadence: the time
// target events take to accrue at the estimated rate, clamped into
// [fast, slow]. A zero (never-seen-an-event) rate maps to the ceiling.
// The ceiling comparison happens in float seconds: a deeply decayed
// rate yields a nominal gap beyond time.Duration's range, and the
// overflowed negative value must clamp to the ceiling, not the floor.
func (p *adaptiveParams) gap(rate float64) time.Duration {
	if rate <= 0 {
		return p.slow
	}
	secs := p.target / rate
	if secs >= p.slow.Seconds() {
		return p.slow
	}
	g := time.Duration(secs * float64(time.Second))
	if g < p.fast {
		return p.fast
	}
	return g
}

// initialGap spreads a new subscription's first poll uniformly across
// the whole [fast, slow) band. Until the engine has observed anything
// the subscription is presumed cold — it settles on the slow ceiling
// after its first empty poll — so a mass install costs at most one
// poll per subscription per ceiling, and the full-band spread drops
// that install directly into the steady-state phase distribution. (A
// narrower spread, say [slow/2, slow), looks more conservative but
// concentrates the first cycle into a poll wave twice the steady rate;
// an admission budget then defers the wave, and the bunching takes
// many jittered cycles to mix out, idling the budget between waves.)
// Hot subscriptions converge within one poll — the first result
// carries up to a full buffer of backlogged events — and honoured
// hints pull the pending poll forward regardless of the gap drawn
// here.
func (p *adaptiveParams) initialGap(rng *stats.RNG) time.Duration {
	return p.fast + time.Duration(rng.Float64()*float64(p.slow-p.fast))
}

// nextGapLocked draws sub's next adaptive cadence from its current rate
// estimate. Caller holds the owning shard's mutex (the rate fields are
// scheduling state).
func (p *adaptiveParams) nextGapLocked(sub *subscription) time.Duration {
	g := p.gap(sub.rate)
	if p.jitter > 0 {
		g = jitterDur(g, p.jitter, sub.rng)
	}
	return g
}

// admission is the global upstream-QPS budget: one reservation-style
// token bucket per upstream service, refilled at qps and capped at
// burst. reserve never rejects — when the bucket is empty it hands
// back the wait until the caller's token accrues, letting tokens go
// negative to remember the outstanding reservations. The scheduler
// turns that wait into a deferral, so under saturation each service is
// polled at exactly qps with no retry herding.
//
// Lock ordering: admission.mu is a leaf — it is taken with a shard's
// mutex held and never takes any other lock.
type admission struct {
	qps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*serviceBucket
	granted int64 // polls admitted without deferral
	// Stall detection for readiness: deferStart marks the beginning of
	// the current unbroken deferral streak (zeroed by any grant),
	// lastDefer its most recent deferral.
	deferStart time.Time
	lastDefer  time.Time
}

// serviceBucket is one service's token state. tokens < 0 encodes
// reservations already handed out beyond the refill horizon.
type serviceBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(qps, burst float64) *admission {
	if burst <= 0 {
		// Default burst: one second of refill, at least one poll.
		burst = math.Max(qps, 1)
	}
	return &admission{qps: qps, burst: burst, buckets: make(map[string]*serviceBucket)}
}

// reserve takes one token for service at now. A zero return admits the
// poll immediately; a positive return is the deferral delay after which
// the reserved token will have accrued.
func (a *admission) reserve(service string, now time.Time) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[service]
	if b == nil {
		b = &serviceBucket{tokens: a.burst, last: now}
		a.buckets[service] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.qps
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	b.tokens--
	if b.tokens >= 0 {
		a.granted++
		a.deferStart = time.Time{}
		return 0
	}
	if a.deferStart.IsZero() {
		a.deferStart = now
	}
	a.lastDefer = now
	return time.Duration(-b.tokens / a.qps * float64(time.Second))
}

// stalled reports whether the budget has been fully deferring for at
// least window: an unbroken deferral streak of that length that is
// still live (a deferral within the last window). The duration is how
// long the streak has run.
func (a *admission) stalled(now time.Time, window time.Duration) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.deferStart.IsZero() {
		return false, 0
	}
	streak := now.Sub(a.deferStart)
	if streak < window || now.Sub(a.lastDefer) > window {
		return false, 0
	}
	return true, streak
}

// grants reports how many polls were admitted without deferral.
func (a *admission) grants() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.granted
}

// tokenBalance sums token balances across services; negative values
// measure the outstanding reservation backlog.
func (a *admission) tokenBalance() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t float64
	for _, b := range a.buckets {
		t += b.tokens
	}
	return t
}
