package engine

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/stats"
)

// switchDoer answers like stubDoer while healthy and with 503 (or a
// transport error) while failing.
type switchDoer struct {
	failing   atomic.Bool
	transport atomic.Bool // fail with an error instead of a 503
	polls     atomic.Int64
}

func (d *switchDoer) Do(req *http.Request) (*http.Response, error) {
	d.polls.Add(1)
	if d.failing.Load() {
		if d.transport.Load() {
			return nil, fmt.Errorf("switchDoer: connection refused")
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Body:       io.NopCloser(strings.NewReader(`{"errors":[{"message":"down"}]}`)),
			Header:     make(http.Header),
			Request:    req,
		}, nil
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(`{"data":[]}`)),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

// traceLog collects trace events under a lock (Trace is synchronous but
// may run on any worker goroutine).
type traceLog struct {
	mu  sync.Mutex
	evs []TraceEvent
}

func (l *traceLog) add(ev TraceEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *traceLog) kinds(k TraceKind) []TraceEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []TraceEvent
	for _, ev := range l.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestBreakerOpensProbesAndCloses walks the full breaker state machine
// against a service that dies and later recovers: consecutive failures
// open the breaker, only spaced probes run while it is open, and the
// first successful probe closes it and restores the policy cadence.
func TestBreakerOpensProbesAndCloses(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &switchDoer{}
	doer.failing.Store(true)
	log := &traceLog{}
	eng := New(Config{
		Clock:         clock,
		RNG:           stats.NewRNG(11),
		Doer:          doer,
		Poll:          FixedInterval{Interval: time.Minute},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		Resilience: ResilienceConfig{
			BackoffBase:      time.Minute,
			BackoffMax:       4 * time.Minute,
			BreakerThreshold: 3,
			ProbeInterval:    10 * time.Minute,
		},
		Trace: log.add,
	})

	var healAt time.Time
	clock.Run(func() {
		if err := eng.Install(scaleApplet(0)); err != nil {
			t.Fatal(err)
		}
		// Failures at ~1m, ~2m, ~4m open the breaker (threshold 3);
		// probes run every ~10m. Heal after the second probe window.
		clock.Sleep(28 * time.Minute)
		if st := eng.Stats(); st.BreakersOpen != 1 {
			t.Errorf("BreakersOpen = %d mid-blackout, want 1", st.BreakersOpen)
		}
		doer.failing.Store(false)
		healAt = clock.Now()
		clock.Sleep(30 * time.Minute)
		eng.Stop()
	})

	opens := log.kinds(TraceBreakerOpen)
	if len(opens) != 1 {
		t.Fatalf("breaker_open events = %d, want 1", len(opens))
	}
	if opens[0].N != 3 {
		t.Errorf("breaker opened after %d failures, want 3", opens[0].N)
	}
	closes := log.kinds(TraceBreakerClose)
	if len(closes) != 1 {
		t.Fatalf("breaker_close events = %d, want 1", len(closes))
	}
	probes := log.kinds(TraceBreakerProbe)
	if len(probes) < 2 {
		t.Fatalf("breaker probes = %d, want ≥ 2", len(probes))
	}
	// Recovery must arrive within one probe interval (plus 10% jitter)
	// of the service healing.
	if lag := closes[0].Time.Sub(healAt); lag > 11*time.Minute {
		t.Errorf("recovered %v after heal, want within one probe interval", lag)
	}
	// While the breaker was open every poll was a probe.
	openAt, closeAt := opens[0].Time, closes[0].Time
	pollsWhileOpen := 0
	for _, ev := range log.kinds(TracePollSent) {
		if ev.Time.After(openAt) && !ev.Time.After(closeAt) {
			pollsWhileOpen++
		}
	}
	if pollsWhileOpen != len(probes) {
		t.Errorf("polls while open = %d, probes = %d — non-probe polls leaked through an open breaker",
			pollsWhileOpen, len(probes))
	}

	st := eng.Stats()
	if st.BreakerOpens != 1 || st.BreakerCloses != 1 {
		t.Errorf("BreakerOpens/Closes = %d/%d, want 1/1", st.BreakerOpens, st.BreakerCloses)
	}
	if st.BreakersOpen != 0 {
		t.Errorf("BreakersOpen = %d after recovery, want 0", st.BreakersOpen)
	}
	if st.PollErrorsHTTP == 0 || st.PollErrorsTransport != 0 {
		t.Errorf("error classification: transport=%d http=%d, want 0/>0",
			st.PollErrorsTransport, st.PollErrorsHTTP)
	}
	// After recovery the subscription is back on the 1-minute policy
	// cadence: roughly 30 polls in the remaining half hour.
	pollsAfter := 0
	for _, ev := range log.kinds(TracePollSent) {
		if ev.Time.After(closeAt) {
			pollsAfter++
		}
	}
	if pollsAfter < 20 {
		t.Errorf("polls after recovery = %d, want ≥ 20 (policy cadence not restored)", pollsAfter)
	}
}

// TestBackoffLadderBounds checks the failure backoff is the capped
// exponential with ±50% jitter: each inter-poll gap of an always-failing
// subscription falls inside its streak's jitter window, and the ladder
// saturates at BackoffMax.
func TestBackoffLadderBounds(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &switchDoer{}
	doer.failing.Store(true)
	log := &traceLog{}
	base, max := time.Minute, 8*time.Minute
	eng := New(Config{
		Clock:         clock,
		RNG:           stats.NewRNG(13),
		Doer:          doer,
		Poll:          FixedInterval{Interval: time.Minute},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
		Resilience: ResilienceConfig{
			BackoffBase:      base,
			BackoffMax:       max,
			BreakerThreshold: -1, // backoff only
		},
		Trace: log.add,
	})
	clock.Run(func() {
		if err := eng.Install(scaleApplet(0)); err != nil {
			t.Fatal(err)
		}
		clock.Sleep(90 * time.Minute)
		eng.Stop()
	})

	polls := log.kinds(TracePollSent)
	if len(polls) < 7 {
		t.Fatalf("polls = %d, want ≥ 7", len(polls))
	}
	// The poll itself takes sub-second virtual time (one httpx retry
	// with jittered sub-second backoff); allow it as slack on top of the
	// jitter window.
	const slack = 2 * time.Second
	distinct := map[time.Duration]bool{}
	for i := 1; i < len(polls); i++ {
		gap := polls[i].Time.Sub(polls[i-1].Time)
		nominal := backoffDelay(base, max, i) // streak after poll i failed
		lo, hi := nominal/2, nominal+nominal/2+slack
		if gap < lo || gap > hi {
			t.Errorf("gap %d = %v outside [%v, %v] for streak %d", i, gap, lo, hi, i)
		}
		distinct[gap.Round(time.Second)] = true
	}
	// Jitter must actually vary the schedule.
	if len(distinct) < 3 {
		t.Errorf("only %d distinct gaps across the ladder — jitter not applied", len(distinct))
	}
	// Saturated: the last gaps sit in the BackoffMax window, never above.
	last := polls[len(polls)-1].Time.Sub(polls[len(polls)-2].Time)
	if last > max+max/2+slack {
		t.Errorf("saturated gap %v exceeds BackoffMax jitter ceiling %v", last, max+max/2)
	}
	if eng.Stats().BreakerOpens != 0 {
		t.Errorf("breaker opened despite BreakerThreshold < 0")
	}
}

// TestTransportErrorsClassified pins the transport-vs-HTTP split for a
// doer that never produces a response.
func TestTransportErrorsClassified(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &switchDoer{}
	doer.failing.Store(true)
	doer.transport.Store(true)
	eng := New(Config{
		Clock:         clock,
		RNG:           stats.NewRNG(17),
		Doer:          doer,
		Poll:          FixedInterval{Interval: time.Minute},
		DispatchDelay: -1,
		Shards:        1,
		ShardWorkers:  1,
	})
	clock.Run(func() {
		if err := eng.Install(scaleApplet(0)); err != nil {
			t.Fatal(err)
		}
		clock.Sleep(5 * time.Minute)
		eng.Stop()
	})
	st := eng.Stats()
	if st.PollErrorsTransport == 0 || st.PollErrorsHTTP != 0 {
		t.Errorf("error classification: transport=%d http=%d, want >0/0",
			st.PollErrorsTransport, st.PollErrorsHTTP)
	}
	if st.PollFailures != st.PollErrorsTransport {
		t.Errorf("PollFailures = %d, classified = %d — counts diverge",
			st.PollFailures, st.PollErrorsTransport)
	}
}
