package engine

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// PollPolicy schedules the gap until an applet's next trigger poll. The
// applet ID and service name are available so a policy can treat
// services differently (as IFTTT evidently does for Alexa-class
// services) or applets differently (the §6 smart-polling proposal).
type PollPolicy interface {
	NextGap(appletID, service string, g *stats.RNG) time.Duration
}

// FixedInterval polls every Interval, deterministically. The paper's E3
// scenario ("our own engine … performs frequent polling, every 1
// second") is FixedInterval{Interval: time.Second}.
type FixedInterval struct {
	Interval time.Duration
}

// NextGap returns the fixed interval.
func (f FixedInterval) NextGap(_, _ string, _ *stats.RNG) time.Duration { return f.Interval }

// PaperPollModel reproduces the polling behaviour the paper measured on
// the production IFTTT engine: a long nominal gap with lognormal jitter,
// occasionally inflated several-fold — presumably when the engine is
// under high workload — producing the 14–15 minute tail of Fig 4 and
// Fig 6.
//
// Calibration (see DESIGN.md §4 and EXPERIMENTS.md): with the defaults
// below, a trigger fires uniformly inside a gap, so measured
// trigger-to-action latency has 25/50/75th percentiles near the paper's
// 58/84/122 s and a worst case of roughly 15 minutes.
type PaperPollModel struct {
	// Base is the nominal gap (default 150 s).
	Base time.Duration
	// Sigma is the lognormal jitter of the gap (default 0.45).
	Sigma float64
	// InflateProb is the chance a gap lands in the inflated regime
	// (default 2%).
	InflateProb float64
	// Inflate samples the inflation multiplier (default uniform 4–6×).
	Inflate stats.Dist
	// Min and Max clamp the final gap (defaults 20 s and 15 min).
	Min, Max time.Duration
}

// NewPaperPollModel returns the calibrated defaults. A trigger fires
// uniformly inside the (size-biased) current gap, so with these values
// the measured T2A latency lands near the paper's 58/84/122 s quartiles
// with a worst case around 15 minutes; see EXPERIMENTS.md for the
// measured calibration.
func NewPaperPollModel() *PaperPollModel {
	return &PaperPollModel{
		Base:        140 * time.Second,
		Sigma:       0.25,
		InflateProb: 0.02,
		Inflate:     stats.Uniform{Lo: 4, Hi: 6},
		Min:         30 * time.Second,
		Max:         15 * time.Minute,
	}
}

// NextGap draws one polling gap.
func (m *PaperPollModel) NextGap(_, _ string, g *stats.RNG) time.Duration {
	gap := stats.Lognormal{Median: m.Base.Seconds(), Sigma: m.Sigma}.Sample(g)
	if m.InflateProb > 0 && g.Float64() < m.InflateProb {
		gap *= m.Inflate.Sample(g)
	}
	d := stats.Duration(gap)
	if d < m.Min {
		d = m.Min
	}
	if d > m.Max {
		d = m.Max
	}
	return d
}

// PerService dispatches to a per-service policy with a fallback. It
// models "IFTTT customizes the polling frequency … for some services
// (such as Alexa) with timing requirements" (§4).
type PerService struct {
	// Overrides maps service name → policy.
	Overrides map[string]PollPolicy
	// Default applies to everything else.
	Default PollPolicy
}

// NextGap picks the override for the service, else the default.
func (p PerService) NextGap(appletID, service string, g *stats.RNG) time.Duration {
	if pol, ok := p.Overrides[service]; ok {
		return pol.NextGap(appletID, service, g)
	}
	return p.Default.NextGap(appletID, service, g)
}

// SmartPolicy is the §6 "poll smartly" proposal: because the top applets
// dominate usage (Fig 3), a fixed global polling budget is better spent
// polling them frequently and the long tail rarely. Hot applets poll
// every Fast interval, everyone else every Slow interval.
type SmartPolicy struct {
	Hot        map[string]bool
	Fast, Slow time.Duration
	// Jitter spreads each drawn gap uniformly into [1-J, 1+J)× the
	// nominal interval. Zero disables jitter, which makes every
	// subscription sharing an interval poll at the same simtime
	// instants — a thundering herd on tick boundaries — so callers
	// that schedule real populations should set it (NewBudgetedSmart
	// defaults it to DefaultSmartJitter).
	Jitter float64
}

// DefaultSmartJitter is the gap spread NewBudgetedSmart applies: wide
// enough that same-interval subscriptions drift apart within a few
// polls, narrow enough to leave the budget arithmetic intact.
const DefaultSmartJitter = 0.1

// NextGap returns Fast for hot applets and Slow otherwise, jittered
// when the policy carries a Jitter fraction.
func (p SmartPolicy) NextGap(appletID, _ string, g *stats.RNG) time.Duration {
	gap := p.Slow
	if p.Hot[appletID] {
		gap = p.Fast
	}
	if p.Jitter > 0 && g != nil {
		gap = jitterDur(gap, p.Jitter, g)
	}
	return gap
}

// NewBudgetedSmart builds a SmartPolicy that spends the same total poll
// budget as a uniform policy polling n applets every uniformInterval,
// but allocates hotShare of that budget to the hot applets. The
// resulting fast/slow intervals are available on the returned policy
// for reporting. It returns an error for out-of-range parameters; when
// every applet is hot (len(hot) >= n) the skew degenerates and the
// policy falls back to the uniform interval for everyone.
func NewBudgetedSmart(hot []string, n int, uniformInterval time.Duration, hotShare float64) (SmartPolicy, error) {
	switch {
	case n < 1:
		return SmartPolicy{}, fmt.Errorf("engine: NewBudgetedSmart: n must be >= 1, got %d", n)
	case len(hot) == 0:
		return SmartPolicy{}, fmt.Errorf("engine: NewBudgetedSmart: hot set is empty")
	case uniformInterval <= 0:
		return SmartPolicy{}, fmt.Errorf("engine: NewBudgetedSmart: uniformInterval must be positive, got %v", uniformInterval)
	case hotShare <= 0 || hotShare >= 1:
		return SmartPolicy{}, fmt.Errorf("engine: NewBudgetedSmart: hotShare must be in (0, 1), got %g", hotShare)
	}
	if len(hot) >= n {
		return SmartPolicy{Hot: toSet(hot), Fast: uniformInterval, Slow: uniformInterval, Jitter: DefaultSmartJitter}, nil
	}
	// Budget in polls/sec: n / uniform.
	budget := float64(n) / uniformInterval.Seconds()
	hotBudget := budget * hotShare
	coldBudget := budget - hotBudget
	fast := time.Duration(float64(len(hot)) / hotBudget * float64(time.Second))
	slow := time.Duration(float64(n-len(hot)) / coldBudget * float64(time.Second))
	return SmartPolicy{Hot: toSet(hot), Fast: fast, Slow: slow, Jitter: DefaultSmartJitter}, nil
}

func toSet(ids []string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}
