package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/service"
)

func TestDedupRingFIFO(t *testing.T) {
	r := newDedupRing(3)
	for _, id := range []string{"a", "b", "c"} {
		if !r.Add(id) {
			t.Fatalf("first Add(%q) reported duplicate", id)
		}
	}
	if r.Add("a") {
		t.Error("remembered ID not deduplicated")
	}
	// "d" evicts "a" (oldest), then "e" evicts "b".
	r.Add("d")
	r.Add("e")
	if !r.Add("a") {
		t.Error("evicted ID should be forgotten (FIFO order)")
	}
	if r.Add("d") || r.Add("e") {
		t.Error("recent IDs evicted out of order")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

// TestDedupRingMemoryBounded is the regression test for the old
// []string FIFO, which re-sliced its backing array on every eviction:
// the array never shrank and eviction was O(window). The ring must keep
// both the buffer and the map at the window size no matter how many
// events stream past.
func TestDedupRingMemoryBounded(t *testing.T) {
	const window = 64
	r := newDedupRing(window)
	for i := 0; i < 100*window; i++ {
		if !r.Add(fmt.Sprintf("ev-%06d", i)) {
			t.Fatalf("distinct ID %d reported duplicate", i)
		}
		if got := cap(r.buf); got > 2*window {
			t.Fatalf("ring storage grew to %d entries after %d adds; want ≤ %d", got, i+1, 2*window)
		}
	}
	if r.Len() != window {
		t.Errorf("Len = %d, want %d", r.Len(), window)
	}
	if got := len(r.seen); got != window {
		t.Errorf("dedup map holds %d entries, want %d", got, window)
	}
	// Only the newest window of IDs is remembered.
	if r.Add(fmt.Sprintf("ev-%06d", 100*window-1)) {
		t.Error("newest ID forgotten")
	}
	if !r.Add("ev-000000") {
		t.Error("ancient ID still remembered; window unbounded")
	}
}

// TestEngineDedupWindowBounded drives the window through the full poll
// path: many more distinct events than DedupWindow stream past, so the
// ring must evict, yet per-applet memory stays at the window size and —
// because the service's replay depth fits inside the window — every
// event still executes exactly once.
func TestEngineDedupWindowBounded(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.engine.dedupCap = 8
	// Keep the poll replay depth below the dedup window; an event must
	// age out of the service buffer before the ring forgets it.
	r.svc = service.New(service.Config{
		Name: "testsvc", Clock: r.clock, ServiceKey: "k", Retention: 4,
	})
	r.svc.RegisterTrigger(service.TriggerSpec{Slug: "fired"})
	r.svc.RegisterAction(service.ActionSpec{
		Slug:    "act",
		Execute: func(map[string]string, proto.UserInfo) error { return nil },
	})
	r.net.AddHost("svc.sim", r.svc.Handler())
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(6 * time.Second) // subscription made
		for i := 0; i < 40; i++ {
			r.svc.Publish("fired", map[string]string{"n": fmt.Sprint(i)})
			r.clock.Sleep(5 * time.Second)
		}
		r.engine.mu.Lock()
		ra := r.engine.applets["a1"]
		r.engine.mu.Unlock()
		if got := ra.dedup.Len(); got > 8 {
			t.Errorf("dedup window grew to %d, want ≤ 8", got)
		}
		if got := len(ra.dedup.seen); got > 8 {
			t.Errorf("dedup map grew to %d entries, want ≤ 8", got)
		}
		r.engine.Stop()
	})
	// Every event still executed exactly once: eviction never outpaced
	// the 5 s polling round.
	if acked := len(r.tracesOf(TraceActionAcked)); acked != 40 {
		t.Errorf("acked %d actions, want 40", acked)
	}
}
