package engine

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/stats"
)

// windowDoer serves, for polls carrying the "win" marker, every event
// available so far (newest first, capped at the protocol's 50) — a
// service that re-serves its whole buffer on every poll, so the
// per-applet dedup rings are the only thing standing between a poll
// and re-execution. That makes dedup-window migration directly
// observable: if a snapshot drops the rings, the target engine's first
// poll re-executes history.
type windowDoer struct {
	clock  simtime.Clock
	start  time.Time
	period time.Duration
}

func (d *windowDoer) Do(req *http.Request) (*http.Response, error) {
	ok := func(body string) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Body:       io.NopCloser(strings.NewReader(body)),
			Header:     make(http.Header),
			Request:    req,
		}, nil
	}
	if req.Body == nil {
		return ok(`{}`)
	}
	raw, _ := io.ReadAll(req.Body)
	if !strings.Contains(string(raw), `"n":"win"`) {
		return ok(`{"data":[]}`)
	}
	avail := int(d.clock.Now().Sub(d.start) / d.period)
	lo := 0
	if avail > 50 {
		lo = avail - 50
	}
	var b strings.Builder
	b.WriteString(`{"data":[`)
	for i := avail - 1; i >= lo; i-- {
		if i < avail-1 {
			b.WriteByte(',')
		}
		ts := d.start.Add(time.Duration(i+1) * d.period).Unix()
		fmt.Fprintf(&b, `{"meta":{"id":"e%06d","timestamp":%d}}`, i, ts)
	}
	b.WriteString(`]}`)
	return ok(b.String())
}

// ackCollector tallies action acks per applet+event across engines.
type ackCollector struct {
	mu    sync.Mutex
	acked map[string]int
}

func (c *ackCollector) observe(ev TraceEvent) {
	if ev.Kind != TraceActionAcked {
		return
	}
	c.mu.Lock()
	if c.acked == nil {
		c.acked = make(map[string]int)
	}
	c.acked[ev.AppletID+"/"+ev.EventID]++
	c.mu.Unlock()
}

func snapshotApplet(id string) Applet {
	return Applet{
		ID:     id,
		UserID: "u1",
		Trigger: ServiceRef{
			Service: "svc", BaseURL: "http://svc.sim", Slug: "fired",
			Fields: map[string]string{"n": "win"},
		},
		Action: ServiceRef{Service: "svc", BaseURL: "http://svc.sim", Slug: "act"},
	}
}

// TestDetachAttachMovesSubscription is the migration core: a coalesced
// two-member subscription polls on engine A, moves to engine B, and the
// re-served history does not re-execute because the dedup rings
// travelled with it — exactly-once across the handoff.
func TestDetachAttachMovesSubscription(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &windowDoer{clock: clock, start: clock.Now(), period: 10 * time.Second}
	col := &ackCollector{}
	mk := func(label string) *Engine {
		return New(Config{
			Clock: clock, RNG: stats.NewRNG(7).Split(label), Doer: doer,
			Poll: FixedInterval{Interval: 5 * time.Second}, DispatchDelay: -1,
			Coalesce: true, Trace: col.observe,
		})
	}
	a, b := mk("A"), mk("B")
	key := func() string { ap := snapshotApplet("a1"); return ap.CoalescedTriggerIdentity() }()

	clock.Run(func() {
		for _, id := range []string{"a1", "a2"} {
			if err := a.Install(snapshotApplet(id)); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		clock.Sleep(21 * time.Second) // several polls; ~2 events occur

		snap, err := a.DetachSubscription(key)
		if err != nil {
			t.Fatalf("detach: %v", err)
		}
		if snap == nil {
			t.Fatal("detach returned no snapshot for a live subscription")
		}
		if len(snap.Members) != 2 {
			t.Fatalf("snapshot members = %d, want 2", len(snap.Members))
		}
		for _, m := range snap.Members {
			if len(m.SeenEvents) == 0 {
				t.Errorf("member %s: empty dedup snapshot after polls served events", m.Applet.ID)
			}
		}
		if st := a.Stats(); st.Applets != 0 || st.Subscriptions != 0 {
			t.Errorf("source after detach: applets=%d subs=%d, want 0/0", st.Applets, st.Subscriptions)
		}
		// The source must not execute anything after the detach.
		col.mu.Lock()
		atDetach := len(col.acked)
		col.mu.Unlock()
		clock.Sleep(11 * time.Second)
		col.mu.Lock()
		if got := len(col.acked); got != atDetach {
			t.Errorf("source executed %d new applet+event pairs after detach", got-atDetach)
		}
		col.mu.Unlock()

		if err := b.AttachSubscription(snap); err != nil {
			t.Fatalf("attach: %v", err)
		}
		if st := b.Stats(); st.Applets != 2 || st.Subscriptions != 1 {
			t.Errorf("target after attach: applets=%d subs=%d, want 2/1", st.Applets, st.Subscriptions)
		}
		clock.Sleep(30 * time.Second) // target polls: re-served history + new events
		a.Stop()
		b.Stop()
	})

	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.acked) == 0 {
		t.Fatal("no actions acked at all")
	}
	newOnTarget := 0
	for k, n := range col.acked {
		if n != 1 {
			t.Errorf("%s executed %d times across the move, want exactly once", k, n)
		}
		// Events e000002+ occurred after the detach, so they can only
		// have executed on the target.
		var idx int
		fmt.Sscanf(strings.SplitN(k, "/e", 2)[1], "%d", &idx)
		if idx >= 2 {
			newOnTarget++
		}
	}
	if newOnTarget == 0 {
		t.Error("target engine never executed a post-move event")
	}
}

// TestDetachWaitsForInflightExecution: the claim loop must wait out an
// execution that owns the subscription, mirroring the poll/push
// ownership protocol.
func TestDetachWaitsForInflightExecution(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &windowDoer{clock: clock, start: clock.Now(), period: time.Hour}
	e := New(Config{
		Clock: clock, RNG: stats.NewRNG(3), Doer: doer,
		Poll: FixedInterval{Interval: time.Hour}, DispatchDelay: -1, Coalesce: true,
	})
	key := func() string { ap := snapshotApplet("a1"); return ap.CoalescedTriggerIdentity() }()

	clock.Run(func() {
		if err := e.Install(snapshotApplet("a1")); err != nil {
			t.Fatalf("install: %v", err)
		}
		sh := e.shardFor(key)
		sh.mu.Lock()
		sub := sh.subs[key]
		sub.polling = true // simulate an in-flight execution owning the sub
		sh.mu.Unlock()

		release := clock.Now().Add(55 * time.Millisecond)
		clock.Go(func() {
			clock.Sleep(55 * time.Millisecond)
			sh.mu.Lock()
			sub.polling = false
			sh.mu.Unlock()
		})
		snap, err := e.DetachSubscription(key)
		if err != nil {
			t.Fatalf("detach: %v", err)
		}
		if snap == nil {
			t.Fatal("no snapshot")
		}
		if clock.Now().Before(release) {
			t.Errorf("detach returned at %v, before the in-flight execution released at %v",
				clock.Now(), release)
		}
		e.Stop()
	})
}

// TestDetachFromStoppedEngine: draining a killed node must work — Stop
// halts scheduling but the subscription state stays detachable.
func TestDetachFromStoppedEngine(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &windowDoer{clock: clock, start: clock.Now(), period: 10 * time.Second}
	mk := func(label string) *Engine {
		return New(Config{
			Clock: clock, RNG: stats.NewRNG(5).Split(label), Doer: doer,
			Poll: FixedInterval{Interval: 5 * time.Second}, DispatchDelay: -1, Coalesce: true,
		})
	}
	a, b := mk("A"), mk("B")
	key := func() string { ap := snapshotApplet("a1"); return ap.CoalescedTriggerIdentity() }()

	clock.Run(func() {
		if err := a.Install(snapshotApplet("a1")); err != nil {
			t.Fatalf("install: %v", err)
		}
		clock.Sleep(12 * time.Second)
		a.Stop() // the "killed" node

		snap, err := a.DetachSubscription(key)
		if err != nil {
			t.Fatalf("detach from stopped engine: %v", err)
		}
		if snap == nil {
			t.Fatal("no snapshot from stopped engine")
		}
		if err := b.AttachSubscription(snap); err != nil {
			t.Fatalf("attach: %v", err)
		}
		if st := b.Stats(); st.Subscriptions != 1 {
			t.Errorf("target subscriptions = %d, want 1", st.Subscriptions)
		}
		b.Stop()
	})
}

// TestAttachRestoresAdaptiveAndBreakerState: the EWMA rate estimate and
// an open breaker must survive the move — a hot identity stays hot, a
// tripped one stays tripped (and settles the breaker gauge on both
// sides).
func TestAttachRestoresAdaptiveAndBreakerState(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &windowDoer{clock: clock, start: clock.Now(), period: time.Hour}
	mk := func(label string) *Engine {
		return New(Config{
			Clock: clock, RNG: stats.NewRNG(9).Split(label), Doer: doer,
			DispatchDelay: -1, Coalesce: true,
			Adaptive: &AdaptiveConfig{FastFloor: 10 * time.Second, SlowCeiling: 15 * time.Minute},
		})
	}
	a, b := mk("A"), mk("B")
	key := func() string { ap := snapshotApplet("a1"); return ap.CoalescedTriggerIdentity() }()

	clock.Run(func() {
		if err := a.Install(snapshotApplet("a1")); err != nil {
			t.Fatalf("install: %v", err)
		}
		sh := a.shardFor(key)
		sh.mu.Lock()
		sub := sh.subs[key]
		sub.rate = 0.25 // hot: four-second period estimate
		sub.rateAt = clock.Now()
		sub.failStreak = 7
		sub.brState = brOpen
		sh.mu.Unlock()
		a.breakerOpen.Add(1)

		snap, err := a.DetachSubscription(key)
		if err != nil || snap == nil {
			t.Fatalf("detach: snap=%v err=%v", snap, err)
		}
		if !snap.BreakerOpen || snap.FailStreak != 7 || snap.Rate != 0.25 {
			t.Errorf("snapshot state = open=%v streak=%d rate=%g, want open=true/7/0.25",
				snap.BreakerOpen, snap.FailStreak, snap.Rate)
		}
		if g := a.breakerOpen.Load(); g != 0 {
			t.Errorf("source breaker gauge = %d after detach, want 0 (settled)", g)
		}
		if err := b.AttachSubscription(snap); err != nil {
			t.Fatalf("attach: %v", err)
		}
		if g := b.breakerOpen.Load(); g != 1 {
			t.Errorf("target breaker gauge = %d, want 1 (restored open)", g)
		}
		bsh := b.shardFor(key)
		bsh.mu.Lock()
		bsub := bsh.subs[key]
		if bsub.brState != brOpen || bsub.failStreak != 7 || bsub.rate != 0.25 {
			t.Errorf("restored state = br=%v streak=%d rate=%g, want open/7/0.25",
				bsub.brState, bsub.failStreak, bsub.rate)
		}
		bsh.mu.Unlock()
		a.Stop()
		b.Stop()
	})
}

// TestAttachRejectsConflicts: duplicate applet IDs and duplicate
// subscription keys must refuse to attach, leaving the engine clean.
func TestAttachRejectsConflicts(t *testing.T) {
	clock := simtime.NewSimDefault()
	doer := &windowDoer{clock: clock, start: clock.Now(), period: time.Hour}
	e := New(Config{
		Clock: clock, RNG: stats.NewRNG(4), Doer: doer,
		Poll: FixedInterval{Interval: time.Hour}, DispatchDelay: -1, Coalesce: true,
	})
	clock.Run(func() {
		if err := e.Install(snapshotApplet("a1")); err != nil {
			t.Fatalf("install: %v", err)
		}
		if err := e.AttachSubscription(nil); err == nil {
			t.Error("attach(nil) succeeded")
		}
		if err := e.AttachSubscription(&SubscriptionSnapshot{Key: "k"}); err == nil {
			t.Error("attach with no members succeeded")
		}
		dupApplet := &SubscriptionSnapshot{
			Key:     "other-key",
			Members: []MemberSnapshot{{Applet: snapshotApplet("a1")}},
		}
		if err := e.AttachSubscription(dupApplet); err == nil {
			t.Error("attach with duplicate applet ID succeeded")
		}
		a1 := snapshotApplet("a1")
		dupKey := &SubscriptionSnapshot{
			Key:     a1.CoalescedTriggerIdentity(),
			Members: []MemberSnapshot{{Applet: snapshotApplet("a9")}},
		}
		if err := e.AttachSubscription(dupKey); err == nil {
			t.Error("attach onto an existing subscription key succeeded")
		}
		if st := e.Stats(); st.Applets != 1 || st.Subscriptions != 1 {
			t.Errorf("engine state disturbed by rejected attaches: applets=%d subs=%d",
				st.Applets, st.Subscriptions)
		}
		e.Stop()
	})
}
