package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/proto"
	"repro/internal/stats"
)

func TestPollLimitCapsBatchAndDropsOverflow(t *testing.T) {
	// The protocol returns the NEWEST k buffered events per poll
	// (newest-first order, truncated at the limit). A backlog larger
	// than k within one polling gap therefore loses its oldest events —
	// a real overflow property of the measured design: the batch is
	// capped at k (the §4 clustering) and the excess never executes.
	r := newRig(t, FixedInterval{Interval: time.Minute}, nil)
	r.engine.pollLimit = 4
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(61 * time.Second) // subscription made
		for i := 0; i < 10; i++ {
			r.svc.Publish("fired", map[string]string{"n": string(rune('0' + i))})
		}
		r.clock.Sleep(5 * time.Minute)
		r.engine.Stop()
	})
	var batches []int
	for _, ev := range r.tracesOf(TracePollResult) {
		if ev.N > 0 {
			batches = append(batches, ev.N)
		}
	}
	if len(batches) != 1 || batches[0] != 4 {
		t.Fatalf("batches = %v, want one capped batch of 4", batches)
	}
	acked := r.tracesOf(TraceActionAcked)
	if len(acked) != 4 {
		t.Fatalf("acked %d actions, want 4 (6 oldest dropped past the limit)", len(acked))
	}
}

func TestDefaultLimitCoversFig6Backlog(t *testing.T) {
	// With the production default k=50, a Fig 6-style backlog (events
	// every 5 s within one gap) executes completely as one cluster.
	r := newRig(t, FixedInterval{Interval: 3 * time.Minute}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(3*time.Minute + time.Second)
		for i := 0; i < 30; i++ {
			r.svc.Publish("fired", map[string]string{"n": string(rune('0' + i))})
			r.clock.Sleep(5 * time.Second)
		}
		r.clock.Sleep(10 * time.Minute)
		r.engine.Stop()
	})
	if acked := r.tracesOf(TraceActionAcked); len(acked) != 30 {
		t.Fatalf("acked %d actions, want all 30", len(acked))
	}
}

func TestRemoveDeletesSubscription(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 10 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		r.clock.Sleep(11 * time.Second)
		if got := r.svc.Subscriptions("fired"); got != 1 {
			t.Errorf("subscriptions before remove = %d", got)
		}
		r.engine.Remove("a1")
		r.clock.Sleep(5 * time.Second) // DELETE in flight
		if got := r.svc.Subscriptions("fired"); got != 0 {
			t.Errorf("subscriptions after remove = %d; DELETE not sent", got)
		}
		r.engine.Stop()
	})
}

func TestUserScopedRealtimeHint(t *testing.T) {
	// A user_id hint must wake every allow-listed applet of that user.
	r := newRig(t, FixedInterval{Interval: 10 * time.Minute}, map[string]bool{"testsvc": true})
	r.clock.Run(func() {
		r.engine.Install(r.applet("a1"))
		other := r.applet("a2")
		other.UserID = "someone-else"
		r.engine.Install(other)
		r.clock.Sleep(10*time.Minute + time.Second) // both subscribed

		before := len(r.tracesOf(TracePollSent))
		r.svc.Publish("fired", map[string]string{"k": "v"})

		// Deliver a user-scoped hint by hand (the SDK sends
		// trigger-identity hints; user hints come from services that
		// track users, like Alexa).
		hintEngineUser(r, "u1")
		r.clock.Sleep(30 * time.Second)
		after := len(r.tracesOf(TracePollSent))
		// Only u1's applet (a1) polls early: exactly one extra poll.
		if after-before != 1 {
			t.Errorf("extra polls after user hint = %d, want 1", after-before)
		}
		r.engine.Stop()
	})
}

// hintEngineUser posts a user-scoped realtime notification to the
// engine host from within the simulation.
func hintEngineUser(r *rig, userID string) {
	client := httpx.NewClient(r.net.Client("svc.sim"), r.clock, 0)
	status, err := client.DoJSON("POST", "http://engine.sim"+proto.RealtimePath,
		proto.RealtimeNotification{Data: []proto.RealtimeHint{{UserID: userID}}}, nil)
	if err != nil || status != 200 {
		panic("hint failed")
	}
}

func TestSmartPolicy(t *testing.T) {
	g := stats.NewRNG(1)
	p := SmartPolicy{
		Hot:  map[string]bool{"top": true},
		Fast: 5 * time.Second,
		Slow: 10 * time.Minute,
	}
	if got := p.NextGap("top", "any", g); got != 5*time.Second {
		t.Errorf("hot gap = %v", got)
	}
	if got := p.NextGap("tail", "any", g); got != 10*time.Minute {
		t.Errorf("cold gap = %v", got)
	}

	// With a jitter fraction, every draw spreads into [1-J, 1+J)×.
	p.Jitter = 0.2
	for i := 0; i < 100; i++ {
		got := p.NextGap("top", "any", g)
		if got < 4*time.Second || got >= 6*time.Second {
			t.Fatalf("jittered hot gap = %v, want [4s, 6s)", got)
		}
	}
	// A nil RNG degrades to the exact interval rather than panicking.
	if got := p.NextGap("top", "any", nil); got != 5*time.Second {
		t.Errorf("nil-RNG gap = %v", got)
	}
}

func TestSmartPolicyJitterDesynchronizes(t *testing.T) {
	// Regression: SmartPolicy used to return the exact Fast/Slow
	// interval, so every subscription sharing an interval polled at
	// the same simtime instants forever (thundering herd). With the
	// seeded jitter NewBudgetedSmart applies, two same-interval
	// subscriptions drift apart: simulate each schedule by summing
	// consecutive draws from independent per-subscription streams and
	// count coinciding poll instants.
	p, err := NewBudgetedSmart([]string{"a", "b"}, 10, 100*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	root := stats.NewRNG(7)
	schedule := func(id string, g *stats.RNG) map[time.Duration]bool {
		at := map[time.Duration]bool{}
		var now time.Duration
		for i := 0; i < 200; i++ {
			now += p.NextGap(id, "svc", g)
			at[now] = true
		}
		return at
	}
	a := schedule("a", root.Split("sub-a"))
	shared := 0
	for instant := range schedule("b", root.Split("sub-b")) {
		if a[instant] {
			shared++
		}
	}
	if shared > 2 {
		t.Errorf("synchronized poll instants = %d of 200, want ~0", shared)
	}
	// Sanity: the un-jittered policy really was lockstep.
	p.Jitter = 0
	a = schedule("a", root.Split("sync-a"))
	shared = 0
	for instant := range schedule("b", root.Split("sync-b")) {
		if a[instant] {
			shared++
		}
	}
	if shared != 200 {
		t.Errorf("zero-jitter shared instants = %d, want 200 (lockstep)", shared)
	}
}

func TestNewBudgetedSmartConservesBudget(t *testing.T) {
	// 100 applets polled uniformly every 100s = 1 poll/s. Smart with
	// 10 hot applets at 50% share: hot rate 0.5/s over 10 applets →
	// fast = 20s; cold rate 0.5/s over 90 → slow = 180s.
	hot := make([]string, 10)
	for i := range hot {
		hot[i] = string(rune('a' + i))
	}
	p, err := NewBudgetedSmart(hot, 100, 100*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fast != 20*time.Second {
		t.Errorf("fast = %v, want 20s", p.Fast)
	}
	if p.Slow != 180*time.Second {
		t.Errorf("slow = %v, want 3m", p.Slow)
	}
	// Total budget: 10/20 + 90/180 = 0.5 + 0.5 = 1 poll/s — conserved.
	budget := 10.0/p.Fast.Seconds() + 90.0/p.Slow.Seconds()
	if budget < 0.99 || budget > 1.01 {
		t.Errorf("budget = %.3f polls/s, want 1.0", budget)
	}
}

func TestNewBudgetedSmartEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		hot      []string
		n        int
		uniform  time.Duration
		hotShare float64
		wantErr  bool
		// For valid degenerate cases: the expected fast/slow intervals.
		wantFast, wantSlow time.Duration
	}{
		{name: "all hot falls back to uniform", hot: []string{"a", "b"}, n: 2,
			uniform: time.Minute, hotShare: 0.5, wantFast: time.Minute, wantSlow: time.Minute},
		{name: "hot exceeds population", hot: []string{"a", "b", "c"}, n: 2,
			uniform: time.Minute, hotShare: 0.5, wantFast: time.Minute, wantSlow: time.Minute},
		{name: "empty hot set", hot: nil, n: 10, uniform: time.Minute, hotShare: 0.5, wantErr: true},
		{name: "zero population", hot: []string{"a"}, n: 0, uniform: time.Minute, hotShare: 0.5, wantErr: true},
		{name: "negative population", hot: []string{"a"}, n: -3, uniform: time.Minute, hotShare: 0.5, wantErr: true},
		{name: "zero interval", hot: []string{"a"}, n: 10, uniform: 0, hotShare: 0.5, wantErr: true},
		{name: "hotShare zero", hot: []string{"a"}, n: 10, uniform: time.Minute, hotShare: 0, wantErr: true},
		{name: "hotShare one", hot: []string{"a"}, n: 10, uniform: time.Minute, hotShare: 1, wantErr: true},
		{name: "hotShare above one", hot: []string{"a"}, n: 10, uniform: time.Minute, hotShare: 1.5, wantErr: true},
		{name: "hotShare negative", hot: []string{"a"}, n: 10, uniform: time.Minute, hotShare: -0.1, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewBudgetedSmart(tc.hot, tc.n, tc.uniform, tc.hotShare)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if p.Fast != tc.wantFast || p.Slow != tc.wantSlow {
				t.Errorf("fast/slow = %v/%v, want %v/%v", p.Fast, p.Slow, tc.wantFast, tc.wantSlow)
			}
			if p.Jitter != DefaultSmartJitter {
				t.Errorf("jitter = %v, want default %v", p.Jitter, DefaultSmartJitter)
			}
		})
	}
}

func TestEngineScalesToManyApplets(t *testing.T) {
	// 200 applets with independent polling loops on one engine: every
	// subscription receives the broadcast event and executes exactly
	// once.
	r := newRig(t, NewPaperPollModel(), nil)
	const n = 200
	r.clock.Run(func() {
		for i := 0; i < n; i++ {
			if err := r.engine.Install(r.applet(fmt.Sprintf("many-%03d", i))); err != nil {
				t.Errorf("install %d: %v", i, err)
				return
			}
		}
		// One full maximal gap so every applet has subscribed.
		r.clock.Sleep(16 * time.Minute)
		if got := r.svc.Subscriptions("fired"); got != n {
			t.Errorf("subscriptions = %d, want %d", got, n)
		}
		r.svc.Publish("fired", map[string]string{"k": "v"})
		r.clock.Sleep(20 * time.Minute)
		r.engine.Stop()
	})
	acked := r.tracesOf(TraceActionAcked)
	if len(acked) != n {
		t.Fatalf("acked = %d, want %d", len(acked), n)
	}
	// Every applet executed exactly once.
	per := map[string]int{}
	for _, ev := range acked {
		per[ev.AppletID]++
	}
	for id, c := range per {
		if c != 1 {
			t.Fatalf("applet %s executed %d times", id, c)
		}
	}
}

func TestEngineStatsCounters(t *testing.T) {
	r := newRig(t, FixedInterval{Interval: 5 * time.Second}, nil)
	r.clock.Run(func() {
		r.engine.Install(r.applet("s1"))
		r.clock.Sleep(6 * time.Second)
		r.svc.Publish("fired", map[string]string{"k": "v"})
		r.clock.Sleep(30 * time.Second)

		// Read the counters over the HTTP surface, as an operator would.
		client := httpx.NewClient(r.net.Client("ops.sim"), r.clock, 0)
		var st Stats
		status, err := client.DoJSON("GET", "http://engine.sim/v1/stats", nil, &st)
		if err != nil || status != 200 {
			t.Errorf("stats endpoint: %d %v", status, err)
		}
		if st.Applets != 1 || st.Polls < 5 || st.EventsReceived != 1 || st.ActionsOK != 1 {
			t.Errorf("stats = %+v", st)
		}
		r.engine.Stop()
	})
	if st := r.engine.Stats(); st.PollFailures != 0 || st.ActionsFailed != 0 {
		t.Errorf("unexpected failures: %+v", st)
	}
}
