package engine

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpx"
)

// countingDoer wraps a Doer and counts requests by method, with a gate
// the test flips to mark the point after which requests are violations.
type countingDoer struct {
	inner      httpx.Doer
	afterStop  atomic.Bool
	deletes    atomic.Int64
	lateDelete atomic.Int64
}

func (d *countingDoer) Do(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodDelete {
		d.deletes.Add(1)
		if d.afterStop.Load() {
			d.lateDelete.Add(1)
		}
	}
	return d.inner.Do(req)
}

// TestReinstallKeepsDedupWindow is the regression for the reinstall
// amnesia bug: Remove(id) followed by Install of the same applet ID
// used to build a fresh dedupRing, so a buffered event the first
// installation already executed would execute again when the next poll
// re-served it. The coalesced two-member subscription keeps the
// upstream buffer alive across the member churn (no last-member DELETE)
// — the exact shape where re-serving is guaranteed.
func TestReinstallKeepsDedupWindow(t *testing.T) {
	r := newRigCfg(t, FixedInterval{Interval: 5 * time.Second}, nil, func(cfg *Config) {
		cfg.Coalesce = true
	})
	a1, a2 := r.applet("a1"), r.applet("a2")
	r.clock.Run(func() {
		if err := r.engine.Install(a1); err != nil {
			t.Errorf("install a1: %v", err)
		}
		if err := r.engine.Install(a2); err != nil {
			t.Errorf("install a2: %v", err)
		}
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		// Both members execute the event once.
		r.clock.Sleep(15 * time.Second)
		r.engine.Remove("a1")
		if err := r.engine.Install(a1); err != nil {
			t.Errorf("reinstall a1: %v", err)
		}
		// Several more polls re-serve the still-buffered event to the
		// subscription; the reinstalled member must not re-execute it.
		r.clock.Sleep(30 * time.Second)
		r.engine.Stop()
	})

	per := map[string]int{}
	for _, ev := range r.tracesOf(TraceActionAcked) {
		per[ev.AppletID+"/"+ev.EventID]++
	}
	if len(per) != 2 {
		t.Fatalf("distinct (applet,event) executions = %d, want 2: %v", len(per), per)
	}
	for k, n := range per {
		if n != 1 {
			t.Errorf("%s executed %d times, want exactly once", k, n)
		}
	}
}

// TestReinstallRetentionDisabled pins the opt-out: with RetiredDedup<0
// the engine reverts to the old semantics and the reinstalled member
// re-executes the re-served event. This guards the config knob (and
// documents that the default is the fix).
func TestReinstallRetentionDisabled(t *testing.T) {
	r := newRigCfg(t, FixedInterval{Interval: 5 * time.Second}, nil, func(cfg *Config) {
		cfg.Coalesce = true
		cfg.RetiredDedup = -1
	})
	a1, a2 := r.applet("a1"), r.applet("a2")
	r.clock.Run(func() {
		r.engine.Install(a1)
		r.engine.Install(a2)
		r.clock.Sleep(7 * time.Second)
		r.svc.Publish("fired", map[string]string{"n": "1"})
		r.clock.Sleep(15 * time.Second)
		r.engine.Remove("a1")
		r.engine.Install(a1)
		r.clock.Sleep(30 * time.Second)
		r.engine.Stop()
	})
	dup := 0
	per := map[string]int{}
	for _, ev := range r.tracesOf(TraceActionAcked) {
		per[ev.AppletID+"/"+ev.EventID]++
	}
	for _, n := range per {
		if n > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("retention disabled but no duplicate execution observed; the opt-out is not exercising the old path")
	}
}

// TestRemoveAfterStopIssuesNoDelete is the regression for the
// Remove/Stop race: a last-member Remove on a stopping (or stopped)
// engine used to spawn the upstream-DELETE actor unconditionally,
// issuing requests against transports that may be mid-teardown and —
// under a simulated clock — leaving an actor behind the test's Run
// section. With the delMu fence no DELETE may be issued once Stop has
// returned.
func TestRemoveAfterStopIssuesNoDelete(t *testing.T) {
	var doer countingDoer
	r := newRigCfg(t, FixedInterval{Interval: 5 * time.Second}, nil, func(cfg *Config) {
		doer.inner = cfg.Doer
		cfg.Doer = &doer
	})
	r.clock.Run(func() {
		for _, id := range []string{"a1", "a2", "a3"} {
			if err := r.engine.Install(r.applet(id)); err != nil {
				t.Errorf("install: %v", err)
			}
		}
		r.clock.Sleep(12 * time.Second)
		r.engine.Stop()
		doer.afterStop.Store(true)
		// Removals after Stop still unindex the applets but must not
		// reach upstream.
		for _, id := range []string{"a1", "a2", "a3"} {
			r.engine.Remove(id)
		}
		// Give any (buggy) spawned actor time to issue its request.
		r.clock.Sleep(time.Minute)
	})
	if n := doer.lateDelete.Load(); n != 0 {
		t.Fatalf("%d upstream DELETEs issued after Stop, want 0", n)
	}
	if got := len(r.engine.Applets()); got != 0 {
		t.Fatalf("applets after removal = %d, want 0", got)
	}
}

// TestRemoveStopRace hammers last-member removals from concurrent
// actors against Stop; run under -race it guards the delMu fence, and
// under the simulated clock it proves the simulation quiesces (Run
// returning is the assertion — a leaked delete actor would trip the
// deadlock detector or hang).
func TestRemoveStopRace(t *testing.T) {
	const n = 60
	var doer countingDoer
	r := newRigCfg(t, FixedInterval{Interval: time.Minute}, nil, func(cfg *Config) {
		doer.inner = cfg.Doer
		cfg.Doer = &doer
	})
	ids := make([]string, n)
	r.clock.Run(func() {
		for i := range ids {
			ids[i] = "a" + string(rune('0'+i/10)) + string(rune('0'+i%10))
			if err := r.engine.Install(r.applet(ids[i])); err != nil {
				t.Errorf("install: %v", err)
			}
		}
		// A bare sync.WaitGroup.Wait would stall the simulated clock —
		// block through a Gate instead, opened by the last worker.
		gate := r.clock.NewGate()
		var left atomic.Int64
		left.Store(4)
		for w := 0; w < 4; w++ {
			w := w
			r.clock.Go(func() {
				for i := w; i < n; i += 4 {
					r.engine.Remove(ids[i])
					r.clock.Sleep(time.Millisecond)
				}
				if left.Add(-1) == 0 {
					gate.Open()
				}
			})
		}
		r.clock.Sleep(8 * time.Millisecond)
		r.engine.Stop()
		gate.Wait()
		r.clock.Sleep(time.Minute)
	})
	if got := len(r.engine.Applets()); got != 0 {
		t.Fatalf("applets after churn = %d, want 0", got)
	}
}
