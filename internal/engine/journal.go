// The engine's durability hooks. The engine itself stays storage-free:
// a Journal (Config.Journal) observes every state change that must
// survive a crash — installs, removes, subscription migrations, and
// per-execution dedup checkpoints — and internal/durable implements it
// as a write-ahead log with periodic snapshots.
//
// Ordering contract: install, remove, attach, and detach records are
// appended inside the engine's e.mu critical section, after validation
// and before the in-memory commit, so the journal's record order equals
// the engine's commit order and a reader that appends nothing while
// holding e.mu observes every committed record. Checkpoints are
// appended by the executing worker after the dedup rings absorbed the
// event IDs and strictly before the first action dispatches —
// replaying a checkpoint therefore never re-executes an event that an
// action was issued for (the crash-window loss is at-most-once: an
// event journaled but not yet dispatched is marked seen and will not
// run after recovery).
package engine

import "repro/internal/proto"

// Journal receives the engine's durable state changes. Implementations
// must be safe for concurrent use; append errors on Install and
// AttachSubscription abort the operation, while Remove, Detach, and
// checkpoint append errors are logged and the operation proceeds
// (refusing a removal because the disk is full would be worse than a
// resurrected applet after a crash).
type Journal interface {
	// AppendInstall records an applet installation. The applet's
	// Conditions are not required to survive the journal round-trip
	// (Condition is an interface and has no portable encoding).
	AppendInstall(a Applet) error
	// AppendRemove records an applet removal by ID.
	AppendRemove(id string) error
	// AppendCheckpoint records the event IDs an execution is about to
	// act on, per member applet.
	AppendCheckpoint(cp Checkpoint) error
	// AppendAttach records a whole subscription arriving via
	// AttachSubscription (cluster migration): members, dedup windows,
	// rate, and breaker state.
	AppendAttach(snap *SubscriptionSnapshot) error
	// AppendDetach records a subscription leaving via
	// DetachSubscription; appletIDs are its member applets at detach.
	AppendDetach(key string, appletIDs []string) error
}

// Checkpoint is the durable dedup delta of one execution: the fresh
// event IDs each member applet of one subscription is about to act on.
type Checkpoint struct {
	// Key is the subscription's wire trigger identity.
	Key     string         `json:"key"`
	Members []MemberEvents `json:"members"`
}

// MemberEvents is one member applet's slice of a Checkpoint.
type MemberEvents struct {
	AppletID string   `json:"applet_id"`
	EventIDs []string `json:"event_ids"`
}

// RetiredDedup is the preserved dedup window of a removed applet: what
// makes a remove-then-reinstall of the same applet ID exactly-once for
// events the first installation already executed.
type RetiredDedup struct {
	AppletID   string   `json:"applet_id"`
	SeenEvents []string `json:"seen_events"`
}

// DefaultRetiredDedup bounds how many removed applets' dedup windows
// the engine remembers for reinstallation (Config.RetiredDedup).
const DefaultRetiredDedup = 4096

// journalCheckpoint appends the dedup delta of one execution (poll or
// push) for sub. Called by the worker that owns the subscription, after
// the rings absorbed the IDs and before any action dispatches.
func (e *Engine) journalCheckpoint(sub *subscription, fresh []proto.TriggerEvent, ranges []memberRange) {
	cp := Checkpoint{Key: sub.key, Members: make([]MemberEvents, 0, len(ranges))}
	for _, mr := range ranges {
		if mr.end == mr.start {
			continue
		}
		ids := make([]string, 0, mr.end-mr.start)
		for _, ev := range fresh[mr.start:mr.end] {
			ids = append(ids, ev.Meta.ID)
		}
		cp.Members = append(cp.Members, MemberEvents{AppletID: mr.ra.def.ID, EventIDs: ids})
	}
	if len(cp.Members) == 0 {
		return
	}
	if err := e.journal.AppendCheckpoint(cp); err != nil && e.log != nil {
		e.log.Warn("journal checkpoint failed", "key", sub.key, "err", err)
	}
}

// retainDedup remembers a removed applet's dedup window for a future
// reinstall of the same ID. Called once per removed member, after its
// final execution completed (so the ring is final): directly from
// Remove when the subscription was idle, or from the owning worker's
// release path when the removal interleaved with an execution.
func (e *Engine) retainDedup(ra *runningApplet) {
	if e.retCap <= 0 {
		return
	}
	ids := ra.dedup.snapshotIDs()
	if len(ids) == 0 {
		return
	}
	id := ra.def.ID
	e.retMu.Lock()
	if _, ok := e.retired[id]; !ok {
		e.retiredQ = append(e.retiredQ, id)
		if len(e.retiredQ) > e.retCap {
			// FIFO eviction: forget the longest-removed applet's window.
			old := e.retiredQ[0]
			e.retiredQ = append(e.retiredQ[:0], e.retiredQ[1:]...)
			delete(e.retired, old)
		}
	}
	e.retired[id] = ids
	e.retMu.Unlock()
}

// takeRetiredDedup consumes the remembered dedup window for id, nil
// when none is held.
func (e *Engine) takeRetiredDedup(id string) []string {
	if e.retCap <= 0 {
		return nil
	}
	e.retMu.Lock()
	ids, ok := e.retired[id]
	if ok {
		delete(e.retired, id)
		for i, q := range e.retiredQ {
			if q == id {
				e.retiredQ = append(e.retiredQ[:i], e.retiredQ[i+1:]...)
				break
			}
		}
	}
	e.retMu.Unlock()
	if !ok {
		return nil
	}
	return ids
}

// ExportRetiredDedup snapshots the retained dedup windows of removed
// applets, oldest removal first — the order SeedRetiredDedup replays to
// reproduce the same FIFO eviction behaviour.
func (e *Engine) ExportRetiredDedup() []RetiredDedup {
	e.retMu.Lock()
	defer e.retMu.Unlock()
	out := make([]RetiredDedup, 0, len(e.retiredQ))
	for _, id := range e.retiredQ {
		if ids, ok := e.retired[id]; ok {
			out = append(out, RetiredDedup{AppletID: id, SeenEvents: ids})
		}
	}
	return out
}

// SeedRetiredDedup loads retained dedup windows (from a recovered
// snapshot) into the engine, in the given order.
func (e *Engine) SeedRetiredDedup(entries []RetiredDedup) {
	if e.retCap <= 0 {
		return
	}
	e.retMu.Lock()
	for _, en := range entries {
		if en.AppletID == "" || len(en.SeenEvents) == 0 {
			continue
		}
		if _, ok := e.retired[en.AppletID]; !ok {
			e.retiredQ = append(e.retiredQ, en.AppletID)
			if len(e.retiredQ) > e.retCap {
				old := e.retiredQ[0]
				e.retiredQ = append(e.retiredQ[:0], e.retiredQ[1:]...)
				delete(e.retired, old)
			}
		}
		e.retired[en.AppletID] = en.SeenEvents
	}
	e.retMu.Unlock()
}
