// The push ingestion tier (Config.Push): partner services POST
// fully-formed event batches to /v1/push and the engine dispatches them
// without a poll round-trip. The flow is
//
//	handlePush (HTTP)  →  shard ingress queue (ingest.Queue, bounded)
//	                   →  deliverPush (consumer actor, micro-batch)
//	                   →  execPush / dispatchPush (existing action path)
//
// Backpressure is explicit: each shard's queue is bounded in pending
// deliveries, an Offer above the bound rejects, and the whole batch
// answers 429 with per-event counts — the pushing service keeps the
// events buffered and the still-running poll path reconciles them
// later. Exactly-once across the two paths falls out of the per-applet
// dedupRing: whichever path sees an event ID first marks it, the other
// path's copy dedups away.
//
// Concurrency follows the scheduler's ownership model: the subscription
// polling flag is claimed (under the shard lock) before dispatching, so
// a push execution and a poll never run concurrently for one
// subscription. Deliveries that find the flag taken park on
// sub.pushPending and the current owner drains them before releasing —
// nothing accepted into a queue is ever silently lost.
package engine

import (
	"net/http"
	"time"

	"repro/internal/httpx"
	"repro/internal/proto"
)

// pushItem is one accepted push delivery queued on a shard: the
// resolved subscription, its events (oldest first, per the push wire
// contract), and the ingress-accept instant for the span's ingest
// segment.
type pushItem struct {
	sub    *subscription
	events []proto.TriggerEvent
	at     time.Time
}

// handlePush accepts a PushBatch over HTTP and feeds it to
// PushDeliveries; 429 when any event was rejected so the service backs
// off and lets polling reconcile.
func (e *Engine) handlePush(w http.ResponseWriter, r *http.Request) {
	var batch proto.PushBatch
	if err := httpx.ReadJSON(r, &batch); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := e.PushDeliveries(batch.Data)
	status := http.StatusOK
	if resp.Rejected > 0 {
		status = http.StatusTooManyRequests
	}
	httpx.WriteJSON(w, status, resp)
}

// PushDeliveries resolves each delivery's trigger identity to its
// subscription and offers it to the owning shard's ingress queue — the
// body of the /v1/push endpoint, exported so a cluster router can
// forward routed deliveries without an HTTP round-trip. The response
// accounts every event: accepted into a queue, rejected by a full
// queue, or unmatched to any installed subscription. Deliveries hold
// ownership of their Events slices from here on. Every event of a
// batch is rejected when the engine was built without Config.Push.
func (e *Engine) PushDeliveries(ds []proto.PushDelivery) proto.PushResponse {
	now := e.clock.Now()
	var resp proto.PushResponse
	for _, d := range ds {
		if d.TriggerIdentity == "" || len(d.Events) == 0 {
			continue
		}
		if !e.push {
			resp.Rejected += len(d.Events)
			continue
		}
		var sub *subscription
		for _, sh := range e.shards {
			if s, _, _ := sh.byIdentity(d.TriggerIdentity); s != nil {
				sub = s
				break
			}
		}
		if sub == nil {
			resp.Unmatched += len(d.Events)
			continue
		}
		// The decoded events slice is owned by this delivery from here
		// on (the batch struct is not reused), so no copy is needed.
		if sub.shard.ingress.Offer(pushItem{sub: sub, events: d.Events, at: now}) {
			resp.Accepted += len(d.Events)
		} else {
			resp.Rejected += len(d.Events)
		}
	}
	e.ingressAccepted.Add(int64(resp.Accepted))
	e.ingressRejected.Add(int64(resp.Rejected))
	e.ingressUnmatch.Add(int64(resp.Unmatched))
	return resp
}

// deliverPush is the shard's ingress-consumer callback: one micro-batch
// of co-arriving deliveries. Deliveries for the same subscription merge
// into a single execution (adaptive micro-batching — the merge width
// tracks the arrival rate); distinct subscriptions dispatch
// sequentially on this consumer, which is what bounds the shard's push
// concurrency exactly like a poll worker bounds its poll concurrency.
func (s *shard) deliverPush(batch []pushItem) {
	for i := range batch {
		it := &batch[i]
		if it.sub == nil {
			continue
		}
		events := it.events
		merged := false
		for j := i + 1; j < len(batch); j++ {
			if batch[j].sub == it.sub {
				if !merged {
					// Copy before extending: the original slice came from
					// the HTTP decode and must not alias the next append.
					events = append(append([]proto.TriggerEvent(nil), events...), batch[j].events...)
					merged = true
				} else {
					events = append(events, batch[j].events...)
				}
				batch[j].sub = nil
			}
		}
		s.execPush(it.sub, events, it.at)
	}
}

// execPush claims the subscription and dispatches one push delivery,
// then drains whatever parked on pushPending meanwhile. Runs on the
// shard's single ingress consumer.
func (s *shard) execPush(sub *subscription, events []proto.TriggerEvent, at time.Time) {
	s.mu.Lock()
	if sub.removed || s.stopped {
		s.mu.Unlock()
		return
	}
	if sub.polling {
		// A poll worker (or an earlier push still draining) owns the
		// subscription; park the delivery for the owner to drain.
		sub.pushPending = append(sub.pushPending, pendingPush{events: events, at: at})
		s.mu.Unlock()
		return
	}
	sub.polling = true
	members := append(sub.snap[:0], sub.members...)
	s.mu.Unlock()

	s.e.dispatchPush(sub, members, events, at)

	s.mu.Lock()
	sub.snap = members
	s.drainPushPendingLocked(sub)
	s.mu.Unlock()
}

// drainPushPendingLocked dispatches every delivery parked on sub while
// the caller owned it, then releases the polling flag. Caller holds
// s.mu and owns sub (sub.polling == true); the lock is dropped around
// each dispatch round. Both release paths — poll worker and push
// consumer — funnel through here so the flag can never leak set.
func (s *shard) drainPushPendingLocked(sub *subscription) {
	for len(sub.pushPending) > 0 && !sub.removed && !s.stopped {
		pend := sub.pushPending
		sub.pushPending = nil
		members := append(sub.snap[:0], sub.members...)
		s.mu.Unlock()
		for _, p := range pend {
			s.e.dispatchPush(sub, members, p.events, p.at)
		}
		s.mu.Lock()
		sub.snap = members
	}
	// Members removed while this execution owned the subscription have
	// final rings now: retain their dedup windows for reinstallation
	// before anyone else can claim the flag.
	for _, ra := range sub.retire {
		s.e.retainDedup(ra)
	}
	sub.retire = nil
	sub.polling = false
}

// dispatchPush fans one push delivery out to the subscription's
// members, mirroring pollSubscription's result half: per-member dedup
// against the same rings the poll path uses (exactly-once across
// paths), the engine's dispatch delay, conditions, and the shared
// action path. events arrive oldest first, so unlike the poll wire no
// reversal is needed. The caller owns the subscription, so the scratch
// buffers are safe to reuse.
func (e *Engine) dispatchPush(sub *subscription, members []*runningApplet, events []proto.TriggerEvent, at time.Time) {
	sh := sub.shard
	leadID := members[0].def.ID
	execID := e.execSeq.Add(1)

	fresh := sub.fresh[:0]
	ranges := sub.ranges[:0]
	for _, ra := range members {
		start := len(fresh)
		for _, ev := range events {
			if ev.Meta.ID == "" || !ra.dedup.Add(ev.Meta.ID) {
				continue
			}
			fresh = append(fresh, ev)
		}
		ranges = append(ranges, memberRange{ra: ra, start: start, end: len(fresh)})
	}
	sub.fresh = fresh
	sub.ranges = ranges

	e.emit(sh, TraceEvent{Kind: TracePushDispatch, AppletID: leadID,
		Service: sub.trigger.Service, ExecID: execID, N: len(fresh), IngestAt: at})
	if len(fresh) == 0 {
		return
	}
	// Same checkpoint-before-dispatch ordering as the poll path: a
	// crashed engine never re-executes an event an action was issued
	// for, whichever path delivered it.
	if e.journal != nil {
		e.journalCheckpoint(sub, fresh, ranges)
	}
	if e.fanout != nil {
		e.fanout.Observe(float64(len(members)))
	}
	if e.dispatch > 0 {
		e.clock.Sleep(e.dispatch)
	}
	for _, mr := range ranges {
		a := &mr.ra.def
		for _, ev := range fresh[mr.start:mr.end] {
			if !conditionsAllow(a.Conditions, e.clock.Now(), ev.Ingredients) {
				e.emit(sh, TraceEvent{Kind: TraceConditionSkip, AppletID: a.ID, ExecID: execID, EventID: ev.Meta.ID})
				continue
			}
			e.dispatchAction(mr.ra, ev, execID)
		}
	}
}
