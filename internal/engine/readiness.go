// Readiness: the engine's answer to "should this node receive
// traffic?". Liveness (/healthz) is unconditional — a process that can
// answer is alive — but an engine whose every circuit breaker for a
// service is open, or whose poll budget has been deferring every poll
// for a sustained window, is up yet not usefully serving, and a load
// balancer should know. Engine.Readiness assembles the obs.Readiness
// checks that Handler mounts at GET /readyz.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// DefaultBudgetStallWindow is how long the admission controller must
// defer every poll before /readyz reports the budget as stalled.
const DefaultBudgetStallWindow = time.Minute

// breakerOutages returns the services for which every subscription's
// circuit breaker is open or half-open (at least one subscription
// exists), sorted — the engine has effectively lost those upstreams.
func (e *Engine) breakerOutages() []string {
	subs := make(map[string]int)
	tripped := make(map[string]int)
	for _, sh := range e.shards {
		sh.mu.Lock()
		for _, sub := range sh.subs {
			if sub.removed {
				continue
			}
			subs[sub.trigger.Service]++
			if sub.brState != brClosed {
				tripped[sub.trigger.Service]++
			}
		}
		sh.mu.Unlock()
	}
	var out []string
	for svc, n := range subs {
		if n > 0 && tripped[svc] == n {
			out = append(out, svc)
		}
	}
	sort.Strings(out)
	return out
}

// Readiness builds the engine's readiness checks: "breakers" degrades
// when some service has every breaker open, "poll_budget" (only with
// admission enabled) when the budget has deferred every poll for
// DefaultBudgetStallWindow.
func (e *Engine) Readiness() *obs.Readiness {
	r := obs.NewReadiness()
	r.Add("breakers", func() (bool, string) {
		down := e.breakerOutages()
		if len(down) == 0 {
			return true, ""
		}
		return false, fmt.Sprintf("all circuit breakers open for: %s", strings.Join(down, ", "))
	})
	if adm := e.admission; adm != nil {
		r.Add("poll_budget", func() (bool, string) {
			stalled, streak := adm.stalled(e.clock.Now(), DefaultBudgetStallWindow)
			if !stalled {
				return true, ""
			}
			return false, fmt.Sprintf("poll budget fully deferring for %s (qps %g)",
				streak.Truncate(time.Second), adm.qps)
		})
	}
	return r
}
