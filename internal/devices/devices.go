// Package devices simulates the consumer IoT hardware of the paper's
// testbed (§2.1): Philips Hue smart lights behind their hub, a WeMo
// light switch, an Amazon Echo Dot (Alexa), and a Samsung SmartThings
// hub. Each device holds real mutable state, exposes the same control
// surface class as the physical product (a REST API for the Hue hub, a
// UPnP/SOAP endpoint for the WeMo switch, voice commands for the Echo),
// and pushes state-change events to subscribers — the role the paper's
// home-LAN proxy relies on.
package devices

import (
	"sync"
	"time"

	"repro/internal/simtime"
)

// Event is a state change announced by a device.
type Event struct {
	// Device is the emitting device's name (e.g. "wemo-1").
	Device string
	// Type names the change (e.g. "switched_on", "phrase_said").
	Type string
	// Attrs carries event details as strings, ready to become trigger
	// ingredients.
	Attrs map[string]string
	// Time is when the change happened.
	Time time.Time
}

// Bus fans device events out to subscribers. The zero value is unusable;
// embed via newBus. Handlers run synchronously on the emitting
// goroutine, so they must be fast — the proxy hands off immediately.
type Bus struct {
	mu   sync.Mutex
	subs []func(Event)
}

// Subscribe registers a handler for every subsequent event.
func (b *Bus) Subscribe(fn func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

func (b *Bus) publish(ev Event) {
	b.mu.Lock()
	subs := append(([]func(Event))(nil), b.subs...)
	b.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// stamped fills the event timestamp from a clock.
func stamped(clock simtime.Clock, ev Event) Event {
	ev.Time = clock.Now()
	return ev
}
