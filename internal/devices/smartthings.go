package devices

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simtime"
)

// Attached is a device that can live behind a SmartThings hub: it has a
// name, accepts named commands, and reports attribute state.
type Attached interface {
	// Name identifies the device on the hub.
	Name() string
	// Command executes a hub-routed command (e.g. "on", "off").
	Command(cmd string, args map[string]string) error
	// Attribute reads one state attribute.
	Attribute(key string) (string, bool)
}

// SmartThingsHub simulates a Samsung SmartThings hub: a LAN controller
// that fronts heterogeneous attached devices and re-publishes their
// events on a single bus — the "general smart home hub / integration
// solution" category of Table 1.
type SmartThingsHub struct {
	Bus
	clock simtime.Clock

	mu      sync.Mutex
	devices map[string]Attached
}

// NewSmartThingsHub creates an empty hub.
func NewSmartThingsHub(clock simtime.Clock) *SmartThingsHub {
	return &SmartThingsHub{clock: clock, devices: make(map[string]Attached)}
}

// Attach registers a device. If the device exposes an event bus
// (optional interface), its events are re-published by the hub.
func (h *SmartThingsHub) Attach(d Attached) {
	h.mu.Lock()
	h.devices[d.Name()] = d
	h.mu.Unlock()
	if b, ok := d.(interface{ Subscribe(func(Event)) }); ok {
		b.Subscribe(func(ev Event) {
			ev.Attrs = cloneAttrs(ev.Attrs)
			ev.Attrs["hub"] = "smartthings"
			h.publish(ev)
		})
	}
}

func cloneAttrs(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Devices lists attached device names, sorted.
func (h *SmartThingsHub) Devices() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.devices))
	for name := range h.devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Command routes a command to an attached device.
func (h *SmartThingsHub) Command(device, cmd string, args map[string]string) error {
	h.mu.Lock()
	d, ok := h.devices[device]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("smartthings: no device %q", device)
	}
	return d.Command(cmd, args)
}

// Attribute reads one attribute of an attached device.
func (h *SmartThingsHub) Attribute(device, key string) (string, error) {
	h.mu.Lock()
	d, ok := h.devices[device]
	h.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("smartthings: no device %q", device)
	}
	v, ok := d.Attribute(key)
	if !ok {
		return "", fmt.Errorf("smartthings: device %q has no attribute %q", device, key)
	}
	return v, nil
}

// Sensor is a simple attachable sensor (motion, contact, temperature…)
// whose readings are set by the environment (tests, workload drivers).
type Sensor struct {
	Bus
	clock simtime.Clock
	name  string
	kind  string

	mu    sync.Mutex
	value string
}

// NewSensor creates a sensor of the given kind ("motion", "contact",
// "temperature", …).
func NewSensor(clock simtime.Clock, name, kind string) *Sensor {
	return &Sensor{clock: clock, name: name, kind: kind}
}

// Name returns the sensor name.
func (s *Sensor) Name() string { return s.name }

// Command returns an error: sensors are read-only.
func (s *Sensor) Command(cmd string, args map[string]string) error {
	return fmt.Errorf("sensor %q: unsupported command %q", s.name, cmd)
}

// Attribute reads "value" or "kind".
func (s *Sensor) Attribute(key string) (string, bool) {
	switch key {
	case "kind":
		return s.kind, true
	case "value":
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.value, true
	}
	return "", false
}

// SetValue updates the reading and emits a sensor_changed event.
func (s *Sensor) SetValue(v string) {
	s.mu.Lock()
	changed := s.value != v
	s.value = v
	s.mu.Unlock()
	if !changed {
		return
	}
	s.publish(stamped(s.clock, Event{
		Device: s.name,
		Type:   "sensor_changed",
		Attrs:  map[string]string{"device": s.name, "kind": s.kind, "value": v},
	}))
}

// Outlet is a switchable smart plug attached behind the hub.
type Outlet struct {
	Bus
	clock simtime.Clock
	name  string

	mu sync.Mutex
	on bool
}

// NewOutlet creates an outlet that is off.
func NewOutlet(clock simtime.Clock, name string) *Outlet {
	return &Outlet{clock: clock, name: name}
}

// Name returns the outlet name.
func (o *Outlet) Name() string { return o.name }

// Command handles "on" and "off".
func (o *Outlet) Command(cmd string, args map[string]string) error {
	switch cmd {
	case "on":
		o.set(true)
	case "off":
		o.set(false)
	default:
		return fmt.Errorf("outlet %q: unsupported command %q", o.name, cmd)
	}
	return nil
}

// Attribute reads "on".
func (o *Outlet) Attribute(key string) (string, bool) {
	if key != "on" {
		return "", false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return fmt.Sprint(o.on), true
}

// On reports the current state.
func (o *Outlet) On() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.on
}

func (o *Outlet) set(on bool) {
	o.mu.Lock()
	changed := o.on != on
	o.on = on
	o.mu.Unlock()
	if !changed {
		return
	}
	typ := "switched_off"
	if on {
		typ = "switched_on"
	}
	o.publish(stamped(o.clock, Event{
		Device: o.name,
		Type:   typ,
		Attrs:  map[string]string{"device": o.name},
	}))
}
