package devices

import (
	"fmt"
	"sync"

	"repro/internal/simtime"
)

// Thermostat simulates a Nest-style smart thermostat: it tracks the
// ambient temperature (set by the environment or a simulation driver),
// holds a target setpoint, and reports heating/cooling state. It backs
// the Nest Thermostat entries of the paper's Table 3 ("temperature
// rises above" trigger, "set temperature" action).
type Thermostat struct {
	Bus
	clock simtime.Clock
	name  string

	mu       sync.Mutex
	ambient  float64 // °C
	setpoint float64
	mode     string // "heat", "cool", "off"
}

// NewThermostat creates a thermostat at 20 °C ambient with a 20 °C
// setpoint, mode off.
func NewThermostat(clock simtime.Clock, name string) *Thermostat {
	return &Thermostat{clock: clock, name: name, ambient: 20, setpoint: 20, mode: "off"}
}

// Name returns the device name.
func (t *Thermostat) Name() string { return t.name }

// Ambient returns the current ambient temperature.
func (t *Thermostat) Ambient() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ambient
}

// Setpoint returns the current target temperature.
func (t *Thermostat) Setpoint() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.setpoint
}

// Mode returns "heat", "cool", or "off".
func (t *Thermostat) Mode() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mode
}

// SetAmbient records a new ambient reading (the environment's input) and
// emits a temperature_changed event; the thermostat also re-evaluates
// its heating/cooling mode against the setpoint.
func (t *Thermostat) SetAmbient(c float64) {
	t.mu.Lock()
	changed := t.ambient != c
	t.ambient = c
	modeEv := t.reevaluateLocked()
	t.mu.Unlock()
	if changed {
		t.publish(stamped(t.clock, Event{
			Device: t.name,
			Type:   "temperature_changed",
			Attrs: map[string]string{
				"device":      t.name,
				"temperature": fmt.Sprintf("%.1f", c),
			},
		}))
	}
	t.emitMode(modeEv)
}

// SetTarget changes the setpoint (the "set temperature" action) and
// emits a target_changed event.
func (t *Thermostat) SetTarget(c float64) {
	t.mu.Lock()
	t.setpoint = c
	modeEv := t.reevaluateLocked()
	t.mu.Unlock()
	t.publish(stamped(t.clock, Event{
		Device: t.name,
		Type:   "target_changed",
		Attrs: map[string]string{
			"device": t.name,
			"target": fmt.Sprintf("%.1f", c),
		},
	}))
	t.emitMode(modeEv)
}

// reevaluateLocked updates the mode with a 0.5 °C hysteresis band and
// returns the new mode when it changed ("" otherwise).
func (t *Thermostat) reevaluateLocked() string {
	want := "off"
	switch {
	case t.ambient < t.setpoint-0.5:
		want = "heat"
	case t.ambient > t.setpoint+0.5:
		want = "cool"
	}
	if want == t.mode {
		return ""
	}
	t.mode = want
	return want
}

func (t *Thermostat) emitMode(mode string) {
	if mode == "" {
		return
	}
	t.publish(stamped(t.clock, Event{
		Device: t.name,
		Type:   "hvac_" + mode,
		Attrs:  map[string]string{"device": t.name, "mode": mode},
	}))
}
