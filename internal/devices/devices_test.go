package devices

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/simtime"
)

func collect(b interface{ Subscribe(func(Event)) }) *[]Event {
	var evs []Event
	b.Subscribe(func(ev Event) { evs = append(evs, ev) })
	return &evs
}

func TestHueSetLampState(t *testing.T) {
	hub := NewHueHub(simtime.NewReal(), "1", "2")
	evs := collect(hub)

	on := true
	hue := 46920 // blue
	if err := hub.SetLampState("1", StateChange{On: &on, Hue: &hue}); err != nil {
		t.Fatal(err)
	}
	s, ok := hub.LampState("1")
	if !ok || !s.On || s.Hue != 46920 {
		t.Fatalf("state = %+v", s)
	}
	if len(*evs) != 1 || (*evs)[0].Type != "light_on" {
		t.Fatalf("events = %+v", *evs)
	}
	// Lamp 2 untouched.
	s2, _ := hub.LampState("2")
	if s2.On {
		t.Fatal("wrong lamp changed")
	}
}

func TestHueUnknownLamp(t *testing.T) {
	hub := NewHueHub(simtime.NewReal(), "1")
	if err := hub.SetLampState("9", StateChange{}); err == nil {
		t.Fatal("unknown lamp accepted")
	}
}

func TestHueClamping(t *testing.T) {
	hub := NewHueHub(simtime.NewReal(), "1")
	bri, hue, sat := 9999, -5, 500
	hub.SetLampState("1", StateChange{Bri: &bri, Hue: &hue, Sat: &sat})
	s, _ := hub.LampState("1")
	if s.Bri != 254 || s.Hue != 0 || s.Sat != 254 {
		t.Fatalf("clamped state = %+v", s)
	}
}

func TestHueBlink(t *testing.T) {
	hub := NewHueHub(simtime.NewReal(), "1")
	evs := collect(hub)
	if err := hub.Blink("1"); err != nil {
		t.Fatal(err)
	}
	if len(*evs) != 2 || (*evs)[0].Type != "light_off" || (*evs)[1].Type != "light_on" {
		t.Fatalf("blink events = %+v", *evs)
	}
}

func TestHueRESTAPI(t *testing.T) {
	hub := NewHueHub(simtime.NewReal(), "1", "2")
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	// List lights.
	resp, err := http.Get(srv.URL + "/api/testuser/lights")
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]LampState
	json.NewDecoder(resp.Body).Decode(&all)
	resp.Body.Close()
	if len(all) != 2 {
		t.Fatalf("lights = %v", all)
	}

	// Set state over REST.
	body := []byte(`{"on":true,"effect":"colorloop"}`)
	req, _ := http.NewRequest("PUT", srv.URL+"/api/testuser/lights/2/state", bytes.NewReader(body))
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp2.StatusCode)
	}
	s, _ := hub.LampState("2")
	if !s.On || s.Effect != "colorloop" {
		t.Fatalf("state after REST = %+v", s)
	}

	// Unknown lamp 404s.
	resp3, _ := http.Get(srv.URL + "/api/testuser/lights/9")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown lamp status = %d", resp3.StatusCode)
	}
}

func TestWemoPressTogglesAndEmits(t *testing.T) {
	sw := NewWemoSwitch(simtime.NewReal(), "wemo-1")
	evs := collect(sw)
	sw.Press()
	sw.Press()
	if sw.On() {
		t.Fatal("two presses should restore off")
	}
	if len(*evs) != 2 || (*evs)[0].Type != "switched_on" || (*evs)[1].Type != "switched_off" {
		t.Fatalf("events = %+v", *evs)
	}
	if (*evs)[0].Attrs["via"] != "physical" {
		t.Fatalf("via = %q", (*evs)[0].Attrs["via"])
	}
}

func TestWemoNoEventWithoutChange(t *testing.T) {
	sw := NewWemoSwitch(simtime.NewReal(), "wemo-1")
	evs := collect(sw)
	sw.SetState(false, "upnp") // already off
	if len(*evs) != 0 {
		t.Fatalf("no-op emitted %d events", len(*evs))
	}
}

func TestWemoUPnPRoundTrip(t *testing.T) {
	sw := NewWemoSwitch(simtime.NewReal(), "wemo-1")
	srv := httptest.NewServer(sw.Handler())
	defer srv.Close()

	// Set on via SOAP.
	resp, err := http.Post(srv.URL+"/upnp/control/basicevent1", "text/xml",
		bytes.NewReader(SetBinaryStateEnvelope(true)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !sw.On() {
		t.Fatal("switch not on after SOAP set")
	}
	on, err := ParseBinaryStateResponse(data)
	if err != nil || !on {
		t.Fatalf("response parse = %v, %v", on, err)
	}

	// Get state via SOAP.
	getEnv := []byte(`<?xml version="1.0"?><s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/"><s:Body><u:GetBinaryState xmlns:u="urn:Belkin:service:basicevent:1"/></s:Body></s:Envelope>`)
	resp2, err := http.Post(srv.URL+"/upnp/control/basicevent1", "text/xml", bytes.NewReader(getEnv))
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	on2, err := ParseBinaryStateResponse(data2)
	if err != nil || !on2 {
		t.Fatalf("get state = %v, %v", on2, err)
	}
}

func TestWemoBadSoap(t *testing.T) {
	sw := NewWemoSwitch(simtime.NewReal(), "w")
	srv := httptest.NewServer(sw.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/upnp/control/basicevent1", "text/xml",
		bytes.NewReader([]byte("<not-soap>")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad soap status = %d", resp.StatusCode)
	}
}

func TestAlexaVoiceCommands(t *testing.T) {
	echo := NewEchoDot(simtime.NewReal(), "echo-1")
	evs := collect(echo)

	cases := []struct {
		say      string
		wantType string
		wantAttr [2]string
		ok       bool
	}{
		{"Alexa, trigger party mode", "phrase_said", [2]string{"phrase", "party mode"}, true},
		{"Alexa, add milk to my todo list", "item_added_todo", [2]string{"item", "milk"}, true},
		{"Alexa, add eggs to my shopping list", "item_added_shopping", [2]string{"item", "eggs"}, true},
		{"Alexa, play Bohemian Rhapsody", "song_played", [2]string{"song", "bohemian rhapsody"}, true},
		{"Alexa, what's on my shopping list", "shopping_list_asked", [2]string{"items", "eggs"}, true},
		{"Alexa, order a pizza", "", [2]string{"", ""}, false},
	}
	for _, c := range cases {
		before := len(*evs)
		got := echo.Say(c.say)
		if got != c.ok {
			t.Errorf("Say(%q) = %v, want %v", c.say, got, c.ok)
			continue
		}
		if !c.ok {
			if len(*evs) != before {
				t.Errorf("unrecognised command emitted an event")
			}
			continue
		}
		ev := (*evs)[len(*evs)-1]
		if ev.Type != c.wantType {
			t.Errorf("Say(%q) type = %q, want %q", c.say, ev.Type, c.wantType)
		}
		if ev.Attrs[c.wantAttr[0]] != c.wantAttr[1] {
			t.Errorf("Say(%q) attr %q = %q, want %q", c.say, c.wantAttr[0], ev.Attrs[c.wantAttr[0]], c.wantAttr[1])
		}
	}

	if got := echo.TodoList(); len(got) != 1 || got[0] != "milk" {
		t.Errorf("todo = %v", got)
	}
	if got := echo.ShoppingList(); len(got) != 1 || got[0] != "eggs" {
		t.Errorf("shopping = %v", got)
	}
	if got := echo.SongsPlayed(); len(got) != 1 {
		t.Errorf("songs = %v", got)
	}
}

func TestSmartThingsHubRoutesCommandsAndEvents(t *testing.T) {
	clock := simtime.NewReal()
	hub := NewSmartThingsHub(clock)
	evs := collect(hub)

	outlet := NewOutlet(clock, "outlet-1")
	sensor := NewSensor(clock, "motion-1", "motion")
	hub.Attach(outlet)
	hub.Attach(sensor)

	if got := hub.Devices(); len(got) != 2 || got[0] != "motion-1" {
		t.Fatalf("devices = %v", got)
	}

	if err := hub.Command("outlet-1", "on", nil); err != nil {
		t.Fatal(err)
	}
	if !outlet.On() {
		t.Fatal("outlet not on")
	}
	sensor.SetValue("active")

	if len(*evs) != 2 {
		t.Fatalf("hub republished %d events, want 2", len(*evs))
	}
	for _, ev := range *evs {
		if ev.Attrs["hub"] != "smartthings" {
			t.Errorf("event missing hub tag: %+v", ev)
		}
	}

	if v, err := hub.Attribute("outlet-1", "on"); err != nil || v != "true" {
		t.Errorf("attribute = %q, %v", v, err)
	}
	if _, err := hub.Attribute("outlet-1", "bogus"); err == nil {
		t.Error("bogus attribute accepted")
	}
	if err := hub.Command("ghost", "on", nil); err == nil {
		t.Error("command to missing device accepted")
	}
	if err := hub.Command("motion-1", "on", nil); err == nil {
		t.Error("sensor accepted a command")
	}
}

func TestSensorNoEventWithoutChange(t *testing.T) {
	s := NewSensor(simtime.NewReal(), "s", "contact")
	evs := collect(s)
	s.SetValue("open")
	s.SetValue("open")
	if len(*evs) != 1 {
		t.Fatalf("events = %d, want 1", len(*evs))
	}
}

func TestBusMultipleSubscribers(t *testing.T) {
	sw := NewWemoSwitch(simtime.NewReal(), "w")
	a := collect(sw)
	b := collect(sw)
	sw.Press()
	if len(*a) != 1 || len(*b) != 1 {
		t.Fatalf("fanout failed: %d, %d", len(*a), len(*b))
	}
}

func TestThermostatModesAndEvents(t *testing.T) {
	th := NewThermostat(simtime.NewReal(), "nest-1")
	evs := collect(th)

	// Ambient rises above setpoint + hysteresis → cooling.
	th.SetAmbient(25)
	if th.Mode() != "cool" {
		t.Fatalf("mode = %q, want cool", th.Mode())
	}
	// Raise the target above ambient → heating off… actually heat when
	// target far above ambient.
	th.SetTarget(30)
	if th.Mode() != "heat" {
		t.Fatalf("mode = %q, want heat", th.Mode())
	}
	// Converge inside the hysteresis band → off.
	th.SetAmbient(30.2)
	if th.Mode() != "off" {
		t.Fatalf("mode = %q, want off", th.Mode())
	}

	types := map[string]int{}
	for _, ev := range *evs {
		types[ev.Type]++
	}
	if types["temperature_changed"] != 2 {
		t.Errorf("temperature_changed = %d, want 2", types["temperature_changed"])
	}
	if types["target_changed"] != 1 {
		t.Errorf("target_changed = %d, want 1", types["target_changed"])
	}
	if types["hvac_cool"] != 1 || types["hvac_heat"] != 1 || types["hvac_off"] != 1 {
		t.Errorf("hvac events = %v", types)
	}
}

func TestThermostatNoEventWithoutAmbientChange(t *testing.T) {
	th := NewThermostat(simtime.NewReal(), "nest-1")
	evs := collect(th)
	th.SetAmbient(20) // unchanged
	for _, ev := range *evs {
		if ev.Type == "temperature_changed" {
			t.Fatal("no-op ambient emitted temperature_changed")
		}
	}
}
