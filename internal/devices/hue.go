package devices

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/httpx"
	"repro/internal/simtime"
)

// LampState is the controllable state of one Hue lamp, mirroring the
// fields of the Hue REST API's /lights/<id>/state resource.
type LampState struct {
	On     bool   `json:"on"`
	Bri    int    `json:"bri"`              // 1..254
	Hue    int    `json:"hue"`              // 0..65535
	Sat    int    `json:"sat"`              // 0..254
	Effect string `json:"effect,omitempty"` // "none" or "colorloop"
}

// HueHub simulates the Philips Hue bridge ❷ with its attached lamps ❶.
// Control flows through SetLampState (the Go surface the official
// service's proprietary path uses) or through the REST Handler (the
// Hue Web API the paper's local proxy uses). Every applied change emits
// an Event on the hub's Bus.
type HueHub struct {
	Bus
	clock simtime.Clock

	mu    sync.Mutex
	lamps map[string]*LampState
}

// NewHueHub creates a hub with the named lamps, all off.
func NewHueHub(clock simtime.Clock, lampIDs ...string) *HueHub {
	h := &HueHub{clock: clock, lamps: make(map[string]*LampState)}
	for _, id := range lampIDs {
		h.lamps[id] = &LampState{Bri: 254, Effect: "none"}
	}
	return h
}

// Lamps lists lamp IDs in sorted order.
func (h *HueHub) Lamps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.lamps))
	for id := range h.lamps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LampState returns a copy of one lamp's state.
func (h *HueHub) LampState(id string) (LampState, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.lamps[id]
	if !ok {
		return LampState{}, false
	}
	return *s, true
}

// StateChange is a partial update; nil fields are left unchanged,
// matching the PUT semantics of the Hue API.
type StateChange struct {
	On     *bool   `json:"on,omitempty"`
	Bri    *int    `json:"bri,omitempty"`
	Hue    *int    `json:"hue,omitempty"`
	Sat    *int    `json:"sat,omitempty"`
	Effect *string `json:"effect,omitempty"`
}

// SetLampState applies a partial update and emits a state event.
func (h *HueHub) SetLampState(id string, change StateChange) error {
	h.mu.Lock()
	s, ok := h.lamps[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hue: unknown lamp %q", id)
	}
	if change.On != nil {
		s.On = *change.On
	}
	if change.Bri != nil {
		s.Bri = clampInt(*change.Bri, 1, 254)
	}
	if change.Hue != nil {
		s.Hue = clampInt(*change.Hue, 0, 65535)
	}
	if change.Sat != nil {
		s.Sat = clampInt(*change.Sat, 0, 254)
	}
	if change.Effect != nil {
		s.Effect = *change.Effect
	}
	now := *s
	h.mu.Unlock()

	typ := "light_changed"
	if change.On != nil {
		if *change.On {
			typ = "light_on"
		} else {
			typ = "light_off"
		}
	}
	h.publish(stamped(h.clock, Event{
		Device: "hue-" + id,
		Type:   typ,
		Attrs: map[string]string{
			"lamp":   id,
			"on":     fmt.Sprint(now.On),
			"bri":    fmt.Sprint(now.Bri),
			"hue":    fmt.Sprint(now.Hue),
			"sat":    fmt.Sprint(now.Sat),
			"effect": now.Effect,
		},
	}))
	return nil
}

// Blink toggles a lamp off-on to implement the "blink lights" action.
func (h *HueHub) Blink(id string) error {
	off, on := false, true
	if err := h.SetLampState(id, StateChange{On: &off}); err != nil {
		return err
	}
	return h.SetLampState(id, StateChange{On: &on})
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Handler exposes the hub's REST Web API, the protocol the paper's local
// proxy speaks to the hub:
//
//	GET /api/{user}/lights            → map of lamp states
//	GET /api/{user}/lights/{id}       → one lamp state
//	PUT /api/{user}/lights/{id}/state → partial update
//
// Authentication is the Hue-style whitelisted username path segment; any
// non-empty user is accepted (pairing is out of scope).
func (h *HueHub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/{user}/lights", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		out := make(map[string]LampState, len(h.lamps))
		for id, s := range h.lamps {
			out[id] = *s
		}
		h.mu.Unlock()
		httpx.WriteJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /api/{user}/lights/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := h.LampState(r.PathValue("id"))
		if !ok {
			httpx.WriteError(w, http.StatusNotFound, "no such lamp")
			return
		}
		httpx.WriteJSON(w, http.StatusOK, s)
	})
	mux.HandleFunc("PUT /api/{user}/lights/{id}/state", func(w http.ResponseWriter, r *http.Request) {
		if strings.TrimSpace(r.PathValue("user")) == "" {
			httpx.WriteError(w, http.StatusForbidden, "unauthorized user")
			return
		}
		var change StateChange
		if err := httpx.ReadJSON(r, &change); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := h.SetLampState(r.PathValue("id"), change); err != nil {
			httpx.WriteError(w, http.StatusNotFound, err.Error())
			return
		}
		httpx.WriteJSON(w, http.StatusOK, []map[string]string{{"success": "state updated"}})
	})
	return mux
}
