package devices

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/simtime"
)

// WemoSwitch simulates a Belkin WeMo Light Switch. It can be actuated
// two ways, matching the physical product: a person pressing the paddle
// (Press / SetPhysical) and a network command over its UPnP SOAP
// endpoint (Handler). Both paths emit switched_on / switched_off events.
type WemoSwitch struct {
	Bus
	clock simtime.Clock
	name  string

	mu sync.Mutex
	on bool
}

// NewWemoSwitch creates a switch that is off.
func NewWemoSwitch(clock simtime.Clock, name string) *WemoSwitch {
	return &WemoSwitch{clock: clock, name: name}
}

// Name returns the switch's device name.
func (w *WemoSwitch) Name() string { return w.name }

// On reports the current state.
func (w *WemoSwitch) On() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.on
}

// Press toggles the paddle, as a human would.
func (w *WemoSwitch) Press() {
	w.SetState(!w.On(), "physical")
}

// SetState sets the binary state, recording how it was actuated.
func (w *WemoSwitch) SetState(on bool, via string) {
	w.mu.Lock()
	changed := w.on != on
	w.on = on
	w.mu.Unlock()
	if !changed {
		return
	}
	typ := "switched_off"
	if on {
		typ = "switched_on"
	}
	w.publish(stamped(w.clock, Event{
		Device: w.name,
		Type:   typ,
		Attrs:  map[string]string{"device": w.name, "via": via},
	}))
}

// soapEnvelope is the UPnP control message shape used by WeMo's
// basicevent service. Only the BinaryState body matters.
type soapEnvelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    soapBody `xml:"Body"`
}

type soapBody struct {
	SetBinaryState *binaryStateArg `xml:"SetBinaryState"`
	GetBinaryState *struct{}       `xml:"GetBinaryState"`
}

type binaryStateArg struct {
	BinaryState int `xml:"BinaryState"`
}

const soapResponseTemplate = `<?xml version="1.0" encoding="utf-8"?>
<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">
<s:Body><u:%sResponse xmlns:u="urn:Belkin:service:basicevent:1">
<BinaryState>%d</BinaryState>
</u:%sResponse></s:Body></s:Envelope>`

// Handler exposes the switch's UPnP control endpoint:
//
//	POST /upnp/control/basicevent1
//
// with a SOAPACTION header of SetBinaryState or GetBinaryState and a
// SOAP envelope body, the protocol the paper's local proxy uses for the
// WeMo device.
func (w *WemoSwitch) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /upnp/control/basicevent1", func(rw http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(rw, "read body", http.StatusBadRequest)
			return
		}
		var env soapEnvelope
		if err := xml.Unmarshal(data, &env); err != nil {
			http.Error(rw, "bad soap envelope", http.StatusBadRequest)
			return
		}
		rw.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		switch {
		case env.Body.SetBinaryState != nil:
			w.SetState(env.Body.SetBinaryState.BinaryState != 0, "upnp")
			fmt.Fprintf(rw, soapResponseTemplate, "SetBinaryState", boolToInt(w.On()), "SetBinaryState")
		case env.Body.GetBinaryState != nil:
			fmt.Fprintf(rw, soapResponseTemplate, "GetBinaryState", boolToInt(w.On()), "GetBinaryState")
		default:
			http.Error(rw, "unsupported action", http.StatusBadRequest)
		}
	})
	return mux
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ParseBinaryStateResponse extracts the BinaryState value from a SOAP
// response; the local proxy uses it when querying the switch.
func ParseBinaryStateResponse(body []byte) (bool, error) {
	var resp struct {
		XMLName xml.Name `xml:"Envelope"`
		Body    struct {
			Inner struct {
				BinaryState int `xml:"BinaryState"`
			} `xml:",any"`
		} `xml:"Body"`
	}
	if err := xml.Unmarshal(body, &resp); err != nil {
		return false, fmt.Errorf("wemo: parse soap response: %w", err)
	}
	return resp.Body.Inner.BinaryState != 0, nil
}

// SetBinaryStateEnvelope builds the SOAP request body to set the switch
// state; the local proxy sends it to the Handler.
func SetBinaryStateEnvelope(on bool) []byte {
	return []byte(fmt.Sprintf(`<?xml version="1.0" encoding="utf-8"?>
<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/" s:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/">
<s:Body><u:SetBinaryState xmlns:u="urn:Belkin:service:basicevent:1">
<BinaryState>%d</BinaryState>
</u:SetBinaryState></s:Body></s:Envelope>`, boolToInt(on)))
}
