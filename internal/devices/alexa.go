package devices

import (
	"strings"
	"sync"

	"repro/internal/simtime"
)

// EchoDot simulates an Amazon Echo Dot running Alexa. The paper's test
// controller actuates it by playing pre-recorded voice commands; Say is
// the programmatic equivalent. The device recognises the trigger phrases
// that back the paper's top Alexa triggers (Table 3): free-form trigger
// phrases ("Alexa, trigger …"), todo-list additions, shopping-list
// additions, and song playback (for applet A7).
type EchoDot struct {
	Bus
	clock simtime.Clock
	name  string

	mu           sync.Mutex
	todoList     []string
	shoppingList []string
	songsPlayed  []string
}

// NewEchoDot creates an Echo with empty lists.
func NewEchoDot(clock simtime.Clock, name string) *EchoDot {
	return &EchoDot{clock: clock, name: name}
}

// Name returns the device name.
func (e *EchoDot) Name() string { return e.name }

// Say processes one voice command. Recognised forms:
//
//	"alexa, trigger <phrase>"            → phrase_said event
//	"alexa, add <item> to my todo list"  → item_added_todo event
//	"alexa, add <item> to my shopping list" → item_added_shopping event
//	"alexa, play <song>"                 → song_played event
//	"alexa, what's on my shopping list"  → shopping_list_asked event
//
// Unrecognised commands are ignored (the device "mishears"), returning
// false.
func (e *EchoDot) Say(command string) bool {
	c := strings.ToLower(strings.TrimSpace(command))
	c = strings.TrimPrefix(c, "alexa,")
	c = strings.TrimPrefix(c, "alexa")
	c = strings.TrimSpace(c)

	switch {
	case strings.HasPrefix(c, "trigger "):
		phrase := strings.TrimSpace(strings.TrimPrefix(c, "trigger "))
		e.emit("phrase_said", map[string]string{"phrase": phrase})
		return true

	case strings.HasPrefix(c, "add ") && strings.HasSuffix(c, " to my todo list"):
		item := strings.TrimSuffix(strings.TrimPrefix(c, "add "), " to my todo list")
		e.mu.Lock()
		e.todoList = append(e.todoList, item)
		e.mu.Unlock()
		e.emit("item_added_todo", map[string]string{"item": item})
		return true

	case strings.HasPrefix(c, "add ") && strings.HasSuffix(c, " to my shopping list"):
		item := strings.TrimSuffix(strings.TrimPrefix(c, "add "), " to my shopping list")
		e.mu.Lock()
		e.shoppingList = append(e.shoppingList, item)
		e.mu.Unlock()
		e.emit("item_added_shopping", map[string]string{"item": item})
		return true

	case strings.HasPrefix(c, "play "):
		song := strings.TrimSpace(strings.TrimPrefix(c, "play "))
		e.mu.Lock()
		e.songsPlayed = append(e.songsPlayed, song)
		e.mu.Unlock()
		e.emit("song_played", map[string]string{"song": song})
		return true

	case strings.HasPrefix(c, "what's on my shopping list"),
		strings.HasPrefix(c, "whats on my shopping list"):
		e.emit("shopping_list_asked", map[string]string{
			"items": strings.Join(e.ShoppingList(), ", "),
		})
		return true
	}
	return false
}

func (e *EchoDot) emit(typ string, attrs map[string]string) {
	attrs["device"] = e.name
	e.publish(stamped(e.clock, Event{Device: e.name, Type: typ, Attrs: attrs}))
}

// TodoList returns a copy of the todo list.
func (e *EchoDot) TodoList() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.todoList...)
}

// ShoppingList returns a copy of the shopping list.
func (e *EchoDot) ShoppingList() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.shoppingList...)
}

// SongsPlayed returns a copy of the playback history.
func (e *EchoDot) SongsPlayed() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.songsPlayed...)
}
