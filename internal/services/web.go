package services

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/oauth"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/webapps"
)

// cursorSet tracks per-subscription pull cursors for pull-mode triggers.
type cursorSet struct {
	mu sync.Mutex
	m  map[string]int64
}

func newCursorSet() *cursorSet { return &cursorSet{m: make(map[string]int64)} }

// swap returns the stored cursor for identity and replaces it with next
// once computed by fn.
func (c *cursorSet) pull(identity string, fn func(since int64) ([]map[string]string, int64)) []map[string]string {
	c.mu.Lock()
	since := c.m[identity]
	c.mu.Unlock()
	events, next := fn(since)
	c.mu.Lock()
	if next > c.m[identity] {
		c.m[identity] = next
	}
	c.mu.Unlock()
	return events
}

// GmailScopes are the OAuth scopes the Gmail service defines. The
// service-level permission model (§6) grants all of them to any
// connected applet; internal/perm quantifies the resulting
// over-privilege.
var GmailScopes = []string{"email:read", "email:send", "email:delete", "email:manage"}

// NewGmailService builds the Gmail partner service for one account:
// pull-mode new_email and new_attachment triggers (the testbed polls web
// apps, §2.2) and a send_email action.
func NewGmailService(env *Env, mail *webapps.Gmail, account string, auth *oauth.Server) *service.Service {
	svc := service.New(service.Config{
		Name: "gmail", Clock: env.Clock, ServiceKey: env.ServiceKey, OAuth: auth,
	})

	newEmail := newCursorSet()
	svc.RegisterTrigger(service.TriggerSpec{
		Slug:  "new_email",
		Scope: "email:read",
		Check: func(identity string, fields map[string]string) []map[string]string {
			return newEmail.pull(identity, func(since int64) ([]map[string]string, int64) {
				emails, next := mail.InboxSince(account, since)
				out := make([]map[string]string, 0, len(emails))
				for _, em := range emails {
					out = append(out, map[string]string{
						"from":    em.From,
						"subject": em.Subject,
						"body":    em.Body,
					})
				}
				return out, next
			})
		},
	})

	newAtt := newCursorSet()
	svc.RegisterTrigger(service.TriggerSpec{
		Slug:  "new_attachment",
		Scope: "email:read",
		Check: func(identity string, fields map[string]string) []map[string]string {
			return newAtt.pull(identity, func(since int64) ([]map[string]string, int64) {
				emails, next := mail.InboxSince(account, since)
				var out []map[string]string
				for _, em := range emails {
					for _, att := range em.Attachments {
						out = append(out, map[string]string{
							"from":     em.From,
							"subject":  em.Subject,
							"filename": att.Name,
							"content":  att.Content,
						})
					}
				}
				return out, next
			})
		},
	})

	svc.RegisterAction(service.ActionSpec{
		Slug:  "send_email",
		Scope: "email:send",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			to := fields["to"]
			if to == "" {
				to = account
			}
			mail.Deliver(account, to, fields["subject"], fields["body"])
			return nil
		},
	})
	return svc
}

// NewDriveService builds the Google Drive partner service: a save_file
// action (applet A4 stores Gmail attachments through it) and a
// file_added trigger.
func NewDriveService(env *Env, drive *webapps.Drive, account string) *service.Service {
	svc := service.New(service.Config{
		Name: "gdrive", Clock: env.Clock, ServiceKey: env.ServiceKey,
	})
	fileAdded := newCursorSet()
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "file_added",
		Check: func(identity string, fields map[string]string) []map[string]string {
			return fileAdded.pull(identity, func(since int64) ([]map[string]string, int64) {
				var out []map[string]string
				next := since
				for _, f := range drive.Files(account) {
					if f.ID > since {
						out = append(out, map[string]string{
							"name": f.Name, "folder": f.Folder,
						})
						if f.ID > next {
							next = f.ID
						}
					}
				}
				return out, next
			})
		},
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "save_file",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			if fields["name"] == "" {
				return fmt.Errorf("gdrive: file name required")
			}
			drive.Save(account, fields["folder"], fields["name"], fields["content"])
			return nil
		},
	})
	return svc
}

// RowSeparator splits the "row" action field of the Sheets add_row
// action into cells.
const RowSeparator = "|||"

// NewSheetsService builds the Google Sheets partner service: an add_row
// action (applets A1 and A7 log events through it) and a push-mode
// row_added trigger (which makes the §4 explicit infinite loop — new
// email → add row, new row → send email — expressible, exactly as on
// the real platform).
func NewSheetsService(env *Env, sheets *webapps.Sheets, account string) *service.Service {
	svc := service.New(service.Config{
		Name: "gsheets", Clock: env.Clock, ServiceKey: env.ServiceKey,
	})
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "row_added",
		Match: func(fields, ingredients map[string]string) bool {
			want := fields["sheet"]
			return want == "" || want == ingredients["sheet"]
		},
	})
	sheets.OnAppend(func(user, sheet string, cells []string) {
		if user != account {
			return
		}
		row := strings.Join(cells, " ")
		svc.Publish("row_added", map[string]string{"sheet": sheet, "row": row})
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "add_row",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			sheet := fields["sheet"]
			if sheet == "" {
				return fmt.Errorf("gsheets: sheet field required")
			}
			sheets.AppendRow(account, sheet, strings.Split(fields["row"], RowSeparator))
			return nil
		},
	})
	return svc
}

// NewWeatherService builds the weather partner service (Table 1
// category 7): a pull-mode condition_changes_to trigger ("it starts to
// rain").
func NewWeatherService(env *Env, weather *webapps.Weather) *service.Service {
	svc := service.New(service.Config{
		Name: "weather", Clock: env.Clock, ServiceKey: env.ServiceKey,
	})
	cur := newCursorSet()
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "condition_changes_to",
		// The condition field filters at match time; location filters
		// at pull time.
		Match: func(fields, ingredients map[string]string) bool {
			want := fields["condition"]
			return want == "" || want == ingredients["condition"]
		},
		Check: func(identity string, fields map[string]string) []map[string]string {
			return cur.pull(identity, func(since int64) ([]map[string]string, int64) {
				changes, next := weather.ChangesSince(fields["location"], since)
				var out []map[string]string
				for _, ch := range changes {
					if fields["condition"] != "" && ch.Condition != fields["condition"] {
						continue
					}
					out = append(out, map[string]string{
						"location":  ch.Location,
						"condition": ch.Condition,
					})
				}
				return out, next
			})
		},
	})
	return svc
}

// NewRSSService builds the RSS partner service (Table 1 category 8): a
// pull-mode new_item trigger.
func NewRSSService(env *Env, feed *webapps.RSS) *service.Service {
	svc := service.New(service.Config{
		Name: "rss", Clock: env.Clock, ServiceKey: env.ServiceKey,
	})
	cur := newCursorSet()
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "new_item",
		Check: func(identity string, fields map[string]string) []map[string]string {
			return cur.pull(identity, func(since int64) ([]map[string]string, int64) {
				items, next := feed.ItemsSince(since)
				out := make([]map[string]string, 0, len(items))
				for _, it := range items {
					out = append(out, map[string]string{"title": it.Title, "url": it.URL})
				}
				return out, next
			})
		},
	})
	return svc
}
