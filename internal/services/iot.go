package services

import (
	"fmt"
	"strconv"

	"repro/internal/devices"
	"repro/internal/proto"
	"repro/internal/service"
)

// NewHueService builds the official Philips Hue partner service: the
// top action service of Table 3, offering "turn on lights", "change
// color", "blink lights", and "turn on color loop", plus a
// light_turned_on trigger used by the chained-applet experiments. It
// controls the hub directly, like the vendor cloud ❻ of Fig 1.
func NewHueService(env *Env, hub *devices.HueHub) *service.Service {
	svc := service.New(service.Config{
		Name: "hue", Clock: env.Clock, ServiceKey: env.ServiceKey,
		Realtime: env.Realtime,
	})

	svc.RegisterTrigger(service.TriggerSpec{
		Slug:  "light_turned_on",
		Match: service.FieldsMatchSubset,
	})
	hub.Subscribe(func(ev devices.Event) {
		if ev.Type == "light_on" {
			svc.Publish("light_turned_on", ev.Attrs)
		}
	})

	lampOf := func(fields map[string]string) string {
		if l := fields["lamp"]; l != "" {
			return l
		}
		// "All lights" default: the first lamp.
		if lamps := hub.Lamps(); len(lamps) > 0 {
			return lamps[0]
		}
		return ""
	}
	setOn := func(on bool) func(map[string]string, proto.UserInfo) error {
		return func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			return hub.SetLampState(lampOf(fields), devices.StateChange{On: &on})
		}
	}
	svc.RegisterAction(service.ActionSpec{Slug: "turn_on_lights", Execute: setOn(true)})
	svc.RegisterAction(service.ActionSpec{Slug: "turn_off_lights", Execute: setOn(false)})
	svc.RegisterAction(service.ActionSpec{
		Slug: "change_color",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			hueVal, ok := HueColors[fields["color"]]
			if !ok {
				if v, err := strconv.Atoi(fields["color"]); err == nil {
					hueVal = v
				} else {
					return fmt.Errorf("hue: unknown color %q", fields["color"])
				}
			}
			on := true
			return hub.SetLampState(lampOf(fields), devices.StateChange{On: &on, Hue: &hueVal})
		},
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "blink_lights",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			return hub.Blink(lampOf(fields))
		},
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "color_loop",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			on := true
			effect := "colorloop"
			return hub.SetLampState(lampOf(fields), devices.StateChange{On: &on, Effect: &effect})
		},
	})
	return svc
}

// NewWemoService builds the official WeMo partner service: switched_on /
// switched_off triggers fed by the physical switch, and turn_on /
// turn_off actions.
func NewWemoService(env *Env, sw *devices.WemoSwitch) *service.Service {
	svc := service.New(service.Config{
		Name: "wemo", Clock: env.Clock, ServiceKey: env.ServiceKey,
		Realtime: env.Realtime,
	})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "switched_on", Match: service.FieldsMatchSubset})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "switched_off", Match: service.FieldsMatchSubset})
	sw.Subscribe(func(ev devices.Event) {
		switch ev.Type {
		case "switched_on", "switched_off":
			svc.Publish(ev.Type, ev.Attrs)
		}
	})
	set := func(on bool) func(map[string]string, proto.UserInfo) error {
		return func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			sw.SetState(on, "service")
			return nil
		}
	}
	svc.RegisterAction(service.ActionSpec{Slug: "turn_on", Execute: set(true)})
	svc.RegisterAction(service.ActionSpec{Slug: "turn_off", Execute: set(false)})
	return svc
}

// NewAlexaService builds the official Amazon Alexa partner service: the
// top trigger service of Table 3, with the "say a phrase", todo-list,
// shopping-list, and song-playback triggers. It is trigger-only, like
// the real one.
func NewAlexaService(env *Env, echo *devices.EchoDot) *service.Service {
	svc := service.New(service.Config{
		Name: "alexa", Clock: env.Clock, ServiceKey: env.ServiceKey,
		Realtime: env.Realtime,
	})
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "say_phrase",
		// The phrase field selects which spoken phrase fires this
		// subscription.
		Match: func(fields, ingredients map[string]string) bool {
			want := fields["phrase"]
			return want == "" || want == ingredients["phrase"]
		},
	})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "item_added_todo"})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "item_added_shopping"})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "shopping_list_asked"})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "song_played"})

	echo.Subscribe(func(ev devices.Event) {
		switch ev.Type {
		case "phrase_said":
			svc.Publish("say_phrase", ev.Attrs)
		case "item_added_todo", "item_added_shopping", "shopping_list_asked", "song_played":
			svc.Publish(ev.Type, ev.Attrs)
		}
	})
	return svc
}

// NewSmartThingsService builds the SmartThings hub service (Table 1
// category 2): a sensor_changed trigger across attached devices and a
// device_command action routed through the hub.
func NewSmartThingsService(env *Env, hub *devices.SmartThingsHub) *service.Service {
	svc := service.New(service.Config{
		Name: "smartthings", Clock: env.Clock, ServiceKey: env.ServiceKey,
		Realtime: env.Realtime,
	})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "sensor_changed", Match: service.FieldsMatchSubset})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "switched_on", Match: service.FieldsMatchSubset})
	hub.Subscribe(func(ev devices.Event) {
		switch ev.Type {
		case "sensor_changed", "switched_on":
			svc.Publish(ev.Type, ev.Attrs)
		}
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "device_command",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			env.sleepPath()
			return hub.Command(fields["device"], fields["command"], fields)
		},
	})
	return svc
}

// NewNestService builds the Nest Thermostat partner service of Table 3:
// a temperature_rises_above trigger (field: threshold °C) and a
// set_temperature action (field: temperature).
func NewNestService(env *Env, th *devices.Thermostat) *service.Service {
	svc := service.New(service.Config{
		Name: "nest", Clock: env.Clock, ServiceKey: env.ServiceKey,
		Realtime: env.Realtime,
	})
	svc.RegisterTrigger(service.TriggerSpec{
		Slug: "temperature_rises_above",
		// The threshold field selects which crossings this
		// subscription cares about.
		Match: func(fields, ingredients map[string]string) bool {
			threshold, err := strconv.ParseFloat(fields["threshold"], 64)
			if err != nil {
				return true // field-less subscriptions take everything
			}
			temp, err := strconv.ParseFloat(ingredients["temperature"], 64)
			return err == nil && temp > threshold
		},
	})
	svc.RegisterTrigger(service.TriggerSpec{Slug: "hvac_state_changed"})
	th.Subscribe(func(ev devices.Event) {
		switch ev.Type {
		case "temperature_changed":
			svc.Publish("temperature_rises_above", ev.Attrs)
		case "hvac_heat", "hvac_cool", "hvac_off":
			svc.Publish("hvac_state_changed", ev.Attrs)
		}
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "set_temperature",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			c, err := strconv.ParseFloat(fields["temperature"], 64)
			if err != nil {
				return fmt.Errorf("nest: bad temperature %q", fields["temperature"])
			}
			env.sleepPath()
			th.SetTarget(c)
			return nil
		},
	})
	return svc
}
