package services

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/devices"
	"repro/internal/homenet"
	"repro/internal/oauth"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/webapps"
)

func testEnv() *Env {
	return &Env{Clock: simtime.NewReal(), RNG: stats.NewRNG(1), ServiceKey: "k"}
}

// subscribe creates a subscription by polling once over HTTP.
func subscribe(t *testing.T, svc *service.Service, slug, identity string, fields map[string]string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	pollSrv(t, srv, slug, identity, fields)
	return srv
}

func pollSrv(t *testing.T, srv *httptest.Server, slug, identity string, fields map[string]string) []proto.TriggerEvent {
	t.Helper()
	body, _ := json.Marshal(proto.TriggerPollRequest{TriggerIdentity: identity, TriggerFields: fields})
	req, _ := http.NewRequest("POST", srv.URL+proto.TriggersPath+slug, bytes.NewReader(body))
	req.Header.Set(proto.ServiceKeyHeader, "k")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll %s status = %d", slug, resp.StatusCode)
	}
	var out proto.TriggerPollResponse
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Data
}

func runAction(t *testing.T, svc *service.Service, slug string, fields map[string]string) int {
	t.Helper()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body, _ := json.Marshal(proto.ActionRequest{ActionFields: fields})
	req, _ := http.NewRequest("POST", srv.URL+proto.ActionsPath+slug, bytes.NewReader(body))
	req.Header.Set(proto.ServiceKeyHeader, "k")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestHueServiceActions(t *testing.T) {
	env := testEnv()
	hub := devices.NewHueHub(env.Clock, "1")
	svc := NewHueService(env, hub)

	if code := runAction(t, svc, "turn_on_lights", nil); code != http.StatusOK {
		t.Fatalf("turn_on status = %d", code)
	}
	if s, _ := hub.LampState("1"); !s.On {
		t.Fatal("lamp not on")
	}
	if code := runAction(t, svc, "change_color", map[string]string{"color": "blue"}); code != http.StatusOK {
		t.Fatalf("change_color status = %d", code)
	}
	if s, _ := hub.LampState("1"); s.Hue != HueColors["blue"] {
		t.Fatalf("hue = %d", s.Hue)
	}
	if code := runAction(t, svc, "change_color", map[string]string{"color": "chartreuse"}); code == http.StatusOK {
		t.Fatal("unknown color accepted")
	}
	if code := runAction(t, svc, "color_loop", nil); code != http.StatusOK {
		t.Fatalf("color_loop status = %d", code)
	}
	if s, _ := hub.LampState("1"); s.Effect != "colorloop" {
		t.Fatal("colorloop not set")
	}
	if code := runAction(t, svc, "blink_lights", nil); code != http.StatusOK {
		t.Fatalf("blink status = %d", code)
	}
}

func TestHueServiceTrigger(t *testing.T) {
	env := testEnv()
	hub := devices.NewHueHub(env.Clock, "1")
	svc := NewHueService(env, hub)
	srv := subscribe(t, svc, "light_turned_on", "sub1", nil)

	on := true
	hub.SetLampState("1", devices.StateChange{On: &on})
	events := pollSrv(t, srv, "light_turned_on", "sub1", nil)
	if len(events) != 1 || events[0].Ingredients["lamp"] != "1" {
		t.Fatalf("events = %+v", events)
	}
}

func TestWemoServiceTriggerAndAction(t *testing.T) {
	env := testEnv()
	sw := devices.NewWemoSwitch(env.Clock, "wemo-1")
	svc := NewWemoService(env, sw)
	srv := subscribe(t, svc, "switched_on", "sub1", nil)

	sw.Press()
	events := pollSrv(t, srv, "switched_on", "sub1", nil)
	if len(events) != 1 || events[0].Ingredients["device"] != "wemo-1" {
		t.Fatalf("events = %+v", events)
	}

	if code := runAction(t, svc, "turn_off", nil); code != http.StatusOK {
		t.Fatalf("turn_off status = %d", code)
	}
	if sw.On() {
		t.Fatal("switch still on")
	}
}

func TestAlexaServicePhraseFiltering(t *testing.T) {
	env := testEnv()
	echo := devices.NewEchoDot(env.Clock, "echo-1")
	svc := NewAlexaService(env, echo)
	srv := subscribe(t, svc, "say_phrase", "party", map[string]string{"phrase": "party mode"})
	pollSrv(t, srv, "say_phrase", "any", nil)

	echo.Say("Alexa, trigger party mode")
	echo.Say("Alexa, trigger bedtime")

	party := pollSrv(t, srv, "say_phrase", "party", map[string]string{"phrase": "party mode"})
	if len(party) != 1 || party[0].Ingredients["phrase"] != "party mode" {
		t.Fatalf("party events = %+v", party)
	}
	any := pollSrv(t, srv, "say_phrase", "any", nil)
	if len(any) != 2 {
		t.Fatalf("unfiltered events = %d, want 2", len(any))
	}
}

func TestAlexaSongTrigger(t *testing.T) {
	env := testEnv()
	echo := devices.NewEchoDot(env.Clock, "echo-1")
	svc := NewAlexaService(env, echo)
	srv := subscribe(t, svc, "song_played", "s", nil)
	echo.Say("Alexa, play Yesterday")
	events := pollSrv(t, srv, "song_played", "s", nil)
	if len(events) != 1 || events[0].Ingredients["song"] != "yesterday" {
		t.Fatalf("events = %+v", events)
	}
}

func TestSmartThingsService(t *testing.T) {
	env := testEnv()
	hub := devices.NewSmartThingsHub(env.Clock)
	outlet := devices.NewOutlet(env.Clock, "outlet-1")
	sensor := devices.NewSensor(env.Clock, "motion-1", "motion")
	hub.Attach(outlet)
	hub.Attach(sensor)
	svc := NewSmartThingsService(env, hub)
	srv := subscribe(t, svc, "sensor_changed", "s", nil)

	sensor.SetValue("active")
	events := pollSrv(t, srv, "sensor_changed", "s", nil)
	if len(events) != 1 || events[0].Ingredients["value"] != "active" {
		t.Fatalf("events = %+v", events)
	}

	code := runAction(t, svc, "device_command", map[string]string{"device": "outlet-1", "command": "on"})
	if code != http.StatusOK {
		t.Fatalf("device_command status = %d", code)
	}
	if !outlet.On() {
		t.Fatal("outlet not on")
	}
}

func TestGmailServicePullTriggers(t *testing.T) {
	env := testEnv()
	mail := webapps.NewGmail(env.Clock)
	svc := NewGmailService(env, mail, "u@mail.sim", nil)
	srv := subscribe(t, svc, "new_email", "e", nil)
	pollSrv(t, srv, "new_attachment", "a", nil)

	mail.Deliver("boss@corp.sim", "u@mail.sim", "report", "do it",
		webapps.Attachment{Name: "q1.pdf", Content: "pdfdata"})

	emails := pollSrv(t, srv, "new_email", "e", nil)
	if len(emails) != 1 || emails[0].Ingredients["subject"] != "report" {
		t.Fatalf("emails = %+v", emails)
	}
	atts := pollSrv(t, srv, "new_attachment", "a", nil)
	if len(atts) != 1 || atts[0].Ingredients["filename"] != "q1.pdf" {
		t.Fatalf("attachments = %+v", atts)
	}

	// Cursor: re-poll returns nothing new.
	if again := pollSrv(t, srv, "new_email", "e", nil); len(again) != 1 {
		// Buffered event is still retained (engine dedups); the point
		// is it must not grow.
		t.Fatalf("re-poll = %d events", len(again))
	}
	mail.Deliver("x@y", "other@mail.sim", "not mine", "")
	if events := pollSrv(t, srv, "new_email", "e", nil); len(events) != 1 {
		t.Fatalf("foreign account leaked: %d events", len(events))
	}
}

func TestGmailServiceSendAction(t *testing.T) {
	env := testEnv()
	mail := webapps.NewGmail(env.Clock)
	svc := NewGmailService(env, mail, "u@mail.sim", nil)
	code := runAction(t, svc, "send_email", map[string]string{
		"to": "friend@mail.sim", "subject": "hi", "body": "yo",
	})
	if code != http.StatusOK {
		t.Fatalf("send status = %d", code)
	}
	if inbox := mail.Inbox("friend@mail.sim"); len(inbox) != 1 || inbox[0].Subject != "hi" {
		t.Fatalf("inbox = %+v", inbox)
	}
}

func TestGmailServiceScopes(t *testing.T) {
	env := testEnv()
	auth := oauth.NewServer(env.Clock, "s", time.Hour)
	auth.RegisterClient("ifttt", "ck")
	mail := webapps.NewGmail(env.Clock)
	svc := NewGmailService(env, mail, "u@mail.sim", auth)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	code := auth.Authorize("u", "ifttt", []string{"email:send"})
	token, _ := auth.Exchange(code, "ifttt", "ck")

	// new_email needs email:read, which this token lacks.
	body, _ := json.Marshal(proto.TriggerPollRequest{TriggerIdentity: "i"})
	req, _ := http.NewRequest("POST", srv.URL+proto.TriggersPath+"new_email", bytes.NewReader(body))
	req.Header.Set(proto.ServiceKeyHeader, "k")
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("underprivileged poll status = %d, want 403", resp.StatusCode)
	}
}

func TestDriveService(t *testing.T) {
	env := testEnv()
	drive := webapps.NewDrive(env.Clock)
	svc := NewDriveService(env, drive, "u")
	srv := subscribe(t, svc, "file_added", "f", nil)

	code := runAction(t, svc, "save_file", map[string]string{
		"folder": "attachments", "name": "q1.pdf", "content": "data",
	})
	if code != http.StatusOK {
		t.Fatalf("save status = %d", code)
	}
	if files := drive.Files("u"); len(files) != 1 || files[0].Name != "q1.pdf" {
		t.Fatalf("files = %+v", files)
	}
	events := pollSrv(t, srv, "file_added", "f", nil)
	if len(events) != 1 || events[0].Ingredients["name"] != "q1.pdf" {
		t.Fatalf("events = %+v", events)
	}
	if code := runAction(t, svc, "save_file", map[string]string{"folder": "x"}); code == http.StatusOK {
		t.Fatal("nameless file accepted")
	}
}

func TestSheetsService(t *testing.T) {
	env := testEnv()
	sheets := webapps.NewSheets(env.Clock, nil)
	svc := NewSheetsService(env, sheets, "u")
	code := runAction(t, svc, "add_row", map[string]string{
		"sheet": "songs", "row": "2017-03-25" + RowSeparator + "Yesterday",
	})
	if code != http.StatusOK {
		t.Fatalf("add_row status = %d", code)
	}
	rows := sheets.Rows("u", "songs")
	if len(rows) != 1 || rows[0][1] != "Yesterday" {
		t.Fatalf("rows = %v", rows)
	}
	if code := runAction(t, svc, "add_row", map[string]string{"row": "x"}); code == http.StatusOK {
		t.Fatal("sheetless row accepted")
	}
}

func TestWeatherService(t *testing.T) {
	env := testEnv()
	w := webapps.NewWeather(env.Clock)
	w.SetCondition("bloomington", "clear")
	svc := NewWeatherService(env, w)
	srv := subscribe(t, svc, "condition_changes_to", "rainsub",
		map[string]string{"condition": "rain", "location": "bloomington"})

	w.SetCondition("bloomington", "rain")
	w.SetCondition("london", "rain") // other location, filtered at pull

	events := pollSrv(t, srv, "condition_changes_to", "rainsub",
		map[string]string{"condition": "rain", "location": "bloomington"})
	if len(events) != 1 || events[0].Ingredients["location"] != "bloomington" {
		t.Fatalf("events = %+v", events)
	}

	w.SetCondition("bloomington", "clear") // not rain → filtered
	events = pollSrv(t, srv, "condition_changes_to", "rainsub",
		map[string]string{"condition": "rain", "location": "bloomington"})
	if len(events) != 1 {
		t.Fatalf("clear leaked through rain filter: %d", len(events))
	}
}

func TestRSSService(t *testing.T) {
	env := testEnv()
	feed := webapps.NewRSS(env.Clock)
	svc := NewRSSService(env, feed)
	srv := subscribe(t, svc, "new_item", "s", nil)
	feed.Publish("APOD", "http://nasa.sim/1")
	events := pollSrv(t, srv, "new_item", "s", nil)
	if len(events) != 1 || events[0].Ingredients["title"] != "APOD" {
		t.Fatalf("events = %+v", events)
	}
}

func TestOurServiceBridgesLink(t *testing.T) {
	clock := simtime.NewSimDefault()
	rng := stats.NewRNG(5)
	env := &Env{Clock: clock, RNG: rng, ServiceKey: "k"}
	proxyEnd, serverEnd := homenet.SimPair(clock, stats.Constant(0.02), rng.Split("link"))

	sw := devices.NewWemoSwitch(clock, "wemo-1")
	hub := devices.NewHueHub(clock, "1")
	proxy := homenet.NewProxy(proxyEnd)
	proxy.Register("wemo-1", homenet.AdapterFunc(
		func(cmd string, args map[string]string) (map[string]string, error) {
			sw.SetState(cmd == "on", "proxy")
			return nil, nil
		}))
	proxy.Register("hue", homenet.AdapterFunc(
		func(cmd string, args map[string]string) (map[string]string, error) {
			on := true
			return nil, hub.SetLampState(args["lamp"], devices.StateChange{On: &on})
		}))
	proxy.Forward(&sw.Bus)
	proxy.Start()

	svc := NewOurService(OurServiceConfig{Env: env, Link: serverEnd})

	// Everything runs inside the simulation: the service is a simnet
	// host, the "engine" is a simnet client in the root actor.
	net := simnet.New(clock, rng.Split("net"))
	net.AddHost("ourservice.sim", svc.Handler())

	simPoll := func(slug, identity string) []proto.TriggerEvent {
		body, _ := json.Marshal(proto.TriggerPollRequest{TriggerIdentity: identity})
		req, _ := http.NewRequest("POST", "http://ourservice.sim"+proto.TriggersPath+slug, bytes.NewReader(body))
		req.Header.Set(proto.ServiceKeyHeader, "k")
		resp, err := net.Client("engine.sim").Do(req)
		if err != nil {
			t.Errorf("poll: %v", err)
			return nil
		}
		defer resp.Body.Close()
		var out proto.TriggerPollResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return out.Data
	}

	clock.Run(func() {
		// Subscribe, fire the switch physically, poll the buffered event.
		simPoll("wemo_switched_on", "s")
		sw.Press()
		clock.Sleep(time.Second)
		events := simPoll("wemo_switched_on", "s")
		if len(events) != 1 {
			t.Errorf("events = %+v", events)
		}

		// Action through the proxy.
		body, _ := json.Marshal(proto.ActionRequest{ActionFields: map[string]string{"lamp": "1"}})
		req, _ := http.NewRequest("POST", "http://ourservice.sim"+proto.ActionsPath+"hue_set_state", bytes.NewReader(body))
		req.Header.Set(proto.ServiceKeyHeader, "k")
		resp, err := net.Client("engine.sim").Do(req)
		if err != nil {
			t.Errorf("action: %v", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("action status = %d", resp.StatusCode)
		}
	})

	if s, _ := hub.LampState("1"); !s.On {
		t.Fatal("lamp not turned on through proxy")
	}
}

func TestNestService(t *testing.T) {
	env := testEnv()
	th := devices.NewThermostat(env.Clock, "nest-1")
	svc := NewNestService(env, th)
	srv := subscribe(t, svc, "temperature_rises_above", "hot",
		map[string]string{"threshold": "28"})

	th.SetAmbient(25) // below threshold
	th.SetAmbient(30) // above
	events := pollSrv(t, srv, "temperature_rises_above", "hot",
		map[string]string{"threshold": "28"})
	if len(events) != 1 || events[0].Ingredients["temperature"] != "30.0" {
		t.Fatalf("events = %+v", events)
	}

	if code := runAction(t, svc, "set_temperature", map[string]string{"temperature": "18.5"}); code != http.StatusOK {
		t.Fatalf("set_temperature status = %d", code)
	}
	if th.Setpoint() != 18.5 {
		t.Fatalf("setpoint = %.1f", th.Setpoint())
	}
	if code := runAction(t, svc, "set_temperature", map[string]string{"temperature": "toasty"}); code == http.StatusOK {
		t.Fatal("bad temperature accepted")
	}
}
