package services

import (
	"repro/internal/homenet"
	"repro/internal/proto"
	"repro/internal/service"
)

// OurServiceConfig configures the self-implemented service ❺.
type OurServiceConfig struct {
	// Env supplies clock, key, and path-delay model.
	Env *Env
	// Link reaches the home LAN through the local proxy.
	Link homenet.ServerLink
	// Realtime, when non-nil, makes the service send realtime hints to
	// the engine on every buffered event (used by the realtime-API
	// experiment).
	Realtime *service.RealtimeConfig
	// Push, when non-nil, makes the service deliver buffered events to
	// the engine's push ingress (used by the push-vs-poll experiment).
	Push *service.PushConfig
}

// NewOurService builds the paper's self-implemented partner service ❺:
// performance-wise efficient, receiving IoT events pushed by the local
// proxy (so trigger events are buffered within ~0.1 s of the physical
// event, as in Table 5) and executing actions by commanding devices
// through the proxy. It mirrors the official services' triggers and
// actions so it can substitute for them in experiments E1 and E2.
func NewOurService(cfg OurServiceConfig) *service.Service {
	env := cfg.Env
	svc := service.New(service.Config{
		Name:       "ourservice",
		Clock:      env.Clock,
		ServiceKey: env.ServiceKey,
		Realtime:   cfg.Realtime,
		Push:       cfg.Push,
	})

	// Triggers: fed by the proxy's event push. Slugs are namespaced by
	// device family so one service covers the whole testbed.
	for _, slug := range []string{
		"wemo_switched_on", "wemo_switched_off",
		"hue_light_on", "hue_light_off",
		"alexa_phrase_said", "alexa_item_added_todo", "alexa_item_added_shopping",
		"alexa_shopping_list_asked", "alexa_song_played",
		"sensor_changed",
	} {
		svc.RegisterTrigger(service.TriggerSpec{Slug: slug, Match: ourMatch})
	}

	cfg.Link.SetEventHandler(func(device, eventType string, attrs map[string]string) {
		if slug, ok := ourTriggerSlug(device, eventType); ok {
			svc.Publish(slug, attrs)
		}
	})

	// Actions: routed through the proxy to the devices.
	command := func(device, cmd string, extra func(map[string]string) map[string]string) service.ActionSpec {
		return service.ActionSpec{
			Slug: device + "_" + cmd,
			Execute: func(fields map[string]string, _ proto.UserInfo) error {
				args := fields
				if extra != nil {
					args = extra(fields)
				}
				_, err := cfg.Link.Command(device, cmd, args)
				return err
			},
		}
	}
	svc.RegisterAction(command("wemo-1", "on", nil))
	svc.RegisterAction(command("wemo-1", "off", nil))
	svc.RegisterAction(service.ActionSpec{
		Slug: "hue_set_state",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			_, err := cfg.Link.Command("hue", "set_state", fields)
			return err
		},
	})
	svc.RegisterAction(service.ActionSpec{
		Slug: "hue_blink",
		Execute: func(fields map[string]string, _ proto.UserInfo) error {
			_, err := cfg.Link.Command("hue", "blink", fields)
			return err
		},
	})
	return svc
}

// ourMatch filters on the phrase field for Alexa subscriptions and on
// exact device fields otherwise.
func ourMatch(fields, ingredients map[string]string) bool {
	if want := fields["phrase"]; want != "" && want != ingredients["phrase"] {
		return false
	}
	if want := fields["device"]; want != "" && want != ingredients["device"] {
		return false
	}
	return true
}

// ourTriggerSlug maps a proxy event to the service's trigger slug.
func ourTriggerSlug(device, eventType string) (string, bool) {
	switch eventType {
	case "switched_on", "switched_off":
		return "wemo_" + eventType, true
	case "light_on":
		return "hue_light_on", true
	case "light_off":
		return "hue_light_off", true
	case "phrase_said":
		return "alexa_phrase_said", true
	case "item_added_todo", "item_added_shopping", "shopping_list_asked", "song_played":
		return "alexa_" + eventType, true
	case "sensor_changed":
		return "sensor_changed", true
	}
	return "", false
}
