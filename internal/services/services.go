// Package services builds the concrete IFTTT partner services of the
// testbed on top of the internal/service SDK:
//
//   - "official" vendor services (Philips Hue, WeMo, Alexa, Gmail,
//     Google Drive, Google Sheets, Weather, RSS) that control their
//     devices or web apps directly, like the vendor clouds in Fig 1;
//   - the paper's self-implemented service ❺ (NewOurService), which
//     reaches home devices through the local proxy via the homenet
//     protocol and is substituted for official services in experiments
//     E1 and E2.
package services

import (
	"sync"

	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Env bundles what every service builder needs.
type Env struct {
	// Clock drives event stamps and modelled path delays.
	Clock simtime.Clock
	// RNG draws path-delay samples; required when PathDelay is set.
	RNG *stats.RNG
	// ServiceKey authenticates the engine to the built services.
	ServiceKey string
	// PathDelay, when non-nil, models the vendor-cloud → home-device
	// control path (sampled once per device operation, in seconds).
	// The paper's Table 5 shows roughly 0.9 s for the action-service →
	// device hop.
	PathDelay stats.Dist
	// Realtime, when non-nil, makes every built push-mode service send
	// realtime hints to the engine. Whether the engine acts on them is
	// its own allow-list decision — the paper found hints honoured for
	// Alexa and ignored for everyone else.
	Realtime *service.RealtimeConfig

	mu sync.Mutex
}

// sleepPath applies one sampled path delay; safe for concurrent actors.
func (e *Env) sleepPath() {
	if e.PathDelay == nil {
		return
	}
	e.mu.Lock()
	d := stats.SampleDuration(e.PathDelay, e.RNG)
	e.mu.Unlock()
	e.Clock.Sleep(d)
}

// HueColors maps the color names users pick in applet fields to Hue API
// hue values.
var HueColors = map[string]int{
	"red":    0,
	"orange": 6000,
	"yellow": 12750,
	"green":  25500,
	"cyan":   38000,
	"blue":   46920,
	"purple": 50000,
	"pink":   56100,
}
